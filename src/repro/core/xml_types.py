"""Loose, run-time type knowledge through XML type descriptions.

The paper's concluding remarks point at the main flexibility loss of TPS:
"our assumption that the different peers must a priori agree on the Java type
system [...].  Figuring out 'loose' ways of achieving such common knowledge
at run-time (e.g., by representing types through XML data structures) is the
subject of ongoing investigations."

This module implements that investigation for the reproduction:

* :func:`describe_type` introspects an event class and produces an
  :class:`XmlTypeDescription` -- the type's name, its ancestor chain (so
  subtype matching still works) and its field names/kinds;
* :class:`XmlEventCodec` serialises events as self-describing XML documents
  that embed the type description next to the field values;
* a receiving peer that *has* the class gets a normal typed instance back;
  a peer that does *not* have the class gets a :class:`DynamicEvent` -- a
  read-only, attribute-accessible view that still knows its place in the
  hierarchy (:meth:`DynamicEvent.conforms_to`), so loosely-coupled
  subscribers can filter by type name without sharing code.

The codec is a drop-in alternative to the binary
:class:`~repro.serialization.object_codec.ObjectCodec`; it deliberately does
not require both sides to import the same Python classes, trading
compactness for interoperability -- exactly the XML-versus-Java-types
trade-off the paper discusses.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Type

from repro.core.exceptions import PSException
from repro.core.type_registry import type_name
from repro.serialization.xml_codec import (
    XmlElement,
    escape_element_text,
    escape_text,
    parse_xml,
    to_xml,
    unescape_text,
)

#: Field kinds the XML representation distinguishes.
_KINDS = ("str", "int", "float", "bool", "null")


def _kind_of(value: Any) -> str:
    if value is None:
        return "null"
    if isinstance(value, bool):
        return "bool"
    if isinstance(value, int):
        return "int"
    if isinstance(value, float):
        return "float"
    if isinstance(value, str):
        return "str"
    raise PSException(
        f"XML type descriptions only support scalar fields; got {type(value).__name__}"
    )


def _parse_value(kind: str, text: str) -> Any:
    if kind == "null":
        return None
    if kind == "bool":
        return text == "true"
    if kind == "int":
        return int(text)
    if kind == "float":
        return float(text)
    return text


@dataclass
class XmlTypeDescription:
    """A language-neutral description of one event type."""

    name: str
    #: Ancestor type names, nearest first (excluding ``object``).
    parents: List[str] = field(default_factory=list)
    #: Field name -> kind (one of ``str``/``int``/``float``/``bool``/``null``).
    fields: Dict[str, str] = field(default_factory=dict)

    def lineage(self) -> List[str]:
        """The type's own name followed by its ancestors."""
        return [self.name, *self.parents]

    def to_xml_element(self) -> XmlElement:
        """Render the description as an XML element."""
        element = XmlElement("TypeDescription")
        element.add("Name", self.name)
        parents = element.add("Parents")
        for parent in self.parents:
            parents.add("Parent", parent)
        fields_el = element.add("Fields")
        for field_name, kind in sorted(self.fields.items()):
            fields_el.add("Field", field_name, kind=kind)
        return element

    @classmethod
    def from_xml_element(cls, element: XmlElement) -> "XmlTypeDescription":
        """Parse a description rendered by :meth:`to_xml_element`."""
        parents_el = element.find("Parents")
        fields_el = element.find("Fields")
        fields: Dict[str, str] = {}
        if fields_el is not None:
            for child in fields_el.find_all("Field"):
                fields[child.text] = child.attributes.get("kind", "str")
        return cls(
            name=element.child_text("Name"),
            parents=[p.text for p in parents_el.find_all("Parent")] if parents_el else [],
            fields=fields,
        )


def describe_type(cls: Type[Any], sample: Optional[Any] = None) -> XmlTypeDescription:
    """Build an :class:`XmlTypeDescription` for ``cls``.

    Field kinds are taken from a ``sample`` instance when given, otherwise
    from the class's ``__init__`` annotations (falling back to ``str``).
    """
    parents = [
        type_name(base)
        for base in cls.__mro__[1:]
        if base is not object
    ]
    fields: Dict[str, str] = {}
    if sample is not None:
        if not isinstance(sample, cls):
            raise PSException("the sample instance does not match the described class")
        for field_name, value in vars(sample).items():
            fields[field_name] = _kind_of(value)
    else:
        annotations = getattr(cls.__init__, "__annotations__", {})
        for field_name, annotation in annotations.items():
            if field_name in ("self", "return"):
                continue
            mapping = {str: "str", int: "int", float: "float", bool: "bool"}
            fields[field_name] = mapping.get(annotation, "str")
    return XmlTypeDescription(name=type_name(cls), parents=parents, fields=fields)


class DynamicEvent(Mapping[str, Any]):
    """A typed-but-classless event received from a peer we share no code with.

    Field values are available both as mapping items (``event["price"]``) and
    as attributes (``event.price``).  :meth:`conforms_to` answers the
    subtype-matching question using the embedded lineage.
    """

    def __init__(self, description: XmlTypeDescription, values: Dict[str, Any]) -> None:
        self._description = description
        self._values = dict(values)

    # ------------------------------------------------------------- identity

    @property
    def type_name(self) -> str:
        """The concrete type name the publisher used."""
        return self._description.name

    @property
    def description(self) -> XmlTypeDescription:
        """The embedded type description."""
        return self._description

    def conforms_to(self, name: str) -> bool:
        """Whether this event's type is ``name`` or one of its descendants.

        ``name`` may be a fully-qualified type name or a bare class name.
        """
        for candidate in self._description.lineage():
            if candidate == name or candidate.rsplit(".", 1)[-1] == name:
                return True
        return False

    # -------------------------------------------------------------- mapping

    def __getitem__(self, key: str) -> Any:
        return self._values[key]

    def __iter__(self):
        return iter(self._values)

    def __len__(self) -> int:
        return len(self._values)

    def __getattr__(self, name: str) -> Any:
        try:
            return self._values[name]
        except KeyError:
            raise AttributeError(name) from None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        short = self.type_name.rsplit(".", 1)[-1]
        return f"DynamicEvent<{short}>({self._values!r})"


#: Shape-match for the canonical documents :meth:`XmlEventCodec.encode`
#: produces: the ``<TypeDescription>`` fragment, then a flat run of ``Value``
#: elements.  Anything else (foreign writers, declarations, pretty-printing,
#: reordered attributes) falls back to the full tree decode.
_CANONICAL_DOC = re.compile(
    r"\A<XmlEvent>"
    r"(<TypeDescription>.*?</TypeDescription>)"
    r'(?:<Values/>|<Values>((?:<Value name="[^"]*" kind="[^"]*"(?:/>|>[^<]*</Value>))*)</Values>)'
    r"</XmlEvent>\Z",
    re.DOTALL,
).match
#: One ``Value`` element out of a canonical document's ``Values`` run.
_CANONICAL_VALUE = re.compile(
    r'<Value name="([^"]*)" kind="([^"]*)"(?:/>|>([^<]*)</Value>)'
).finditer

#: Upper bounds on cached decode plans.  Plans are keyed on the raw
#: ``<TypeDescription>`` fragment of *received* documents, so without a cap a
#: remote producer churning type descriptions could grow the cache without
#: limit (the same concern ``BoundedIdSet`` addresses for duplicate ids).
#: Oversized fragments are decoded but never cached, so the cache is bounded
#: in bytes as well as entries.
_DECODE_PLAN_CAPACITY = 256
_DECODE_PLAN_MAX_FRAGMENT_BYTES = 16 * 1024


class XmlEventCodec:
    """Serialises events as self-describing XML documents.

    ``decode`` reconstructs a real instance when the concrete class has been
    registered (or passed via ``known_types``), and a :class:`DynamicEvent`
    otherwise.

    Because the embedded type description depends only on the event's class
    and its field kinds -- not on the field *values* -- the codec caches the
    pre-rendered ``<TypeDescription>`` fragment per ``(class, field-kinds)``
    signature and splices it into each document, instead of re-introspecting
    the class and re-rendering an element tree on every publish.  Pass
    ``cache_descriptions=False`` to force the original tree-building path;
    both produce byte-identical documents (enforced by the property tests in
    ``tests/test_codec_fastpath_properties.py``).

    ``decode`` has the mirror-image fast path: documents matching the
    canonical shape the encoder emits are decoded with one regex match plus a
    per-``<TypeDescription>``-fragment plan cache, so repeated events of one
    type skip full tree construction entirely.  Pass ``cache_documents=False``
    to force the original parse-tree path; both decode every document
    identically (same property suite).  Cached
    :class:`XmlTypeDescription` objects are shared across decoded events and
    must be treated as immutable.
    """

    def __init__(
        self,
        known_types: Optional[Dict[str, Type[Any]]] = None,
        *,
        cache_descriptions: bool = True,
        cache_documents: bool = True,
    ) -> None:
        self._known: Dict[str, Type[Any]] = dict(known_types or {})
        self.cache_descriptions = cache_descriptions
        self.cache_documents = cache_documents
        #: (class, ((field, kind), ...)) -> pre-rendered TypeDescription XML.
        self._description_fragments: Dict[Any, str] = {}
        #: Raw TypeDescription fragment -> parsed description (decode plans).
        self._decode_plans: Dict[str, XmlTypeDescription] = {}

    # ------------------------------------------------------------- registry

    def register(self, cls: Type[Any], name: Optional[str] = None) -> Type[Any]:
        """Register a class so :meth:`decode` can rebuild real instances of it."""
        self._known[name or type_name(cls)] = cls
        return cls

    def known_type_names(self) -> List[str]:
        """Names of every registered class."""
        return sorted(self._known)

    # ------------------------------------------------------------- encoding

    def encode(self, event: Any) -> bytes:
        """Serialise an event (scalar fields only) to XML bytes."""
        if not self.cache_descriptions:
            return self._encode_tree(event)
        cls = type(event)
        state = vars(event)
        # _kind_of also validates that every field is scalar, exactly like
        # describe_type does first on the uncached path.
        pairs = [(field_name, _kind_of(value)) for field_name, value in state.items()]
        cache_key = (cls, tuple(pairs))
        fragment = self._description_fragments.get(cache_key)
        if fragment is None:
            fragment = describe_type(cls, sample=event).to_xml_element().to_string()
            self._description_fragments[cache_key] = fragment
        parts = ["<XmlEvent>", fragment]
        if pairs:
            parts.append("<Values>")
            for (field_name, kind), value in zip(pairs, state.values()):
                text = "" if value is None else _render(value)
                name_attr = escape_text(field_name)
                if text:
                    parts.append(
                        f'<Value name="{name_attr}" kind="{kind}">'
                        f"{escape_element_text(text)}</Value>"
                    )
                else:
                    parts.append(f'<Value name="{name_attr}" kind="{kind}"/>')
            parts.append("</Values>")
        else:
            parts.append("<Values/>")
        parts.append("</XmlEvent>")
        return "".join(parts).encode("utf-8")

    def _encode_tree(self, event: Any) -> bytes:
        """The original, uncached encoder: introspect and build an element tree."""
        description = describe_type(type(event), sample=event)
        root = XmlElement("XmlEvent")
        root.add_child(description.to_xml_element())
        values = root.add("Values")
        for field_name, value in vars(event).items():
            values.add("Value", "" if value is None else _render(value), name=field_name,
                       kind=_kind_of(value))
        return to_xml(root, declaration=False).encode("utf-8")

    def decode(self, payload: bytes) -> Any:
        """Rebuild a typed instance (if the class is known) or a :class:`DynamicEvent`."""
        document = payload.decode("utf-8")
        if self.cache_documents:
            match = _CANONICAL_DOC(document)
            if match is not None:
                return self._decode_canonical(match)
        return self._decode_tree(document)

    def _decode_canonical(self, match: "re.Match[str]") -> Any:
        """Decode a shape-matched canonical document without building a tree.

        The parsed ``<TypeDescription>`` is cached per raw fragment (one per
        event type in steady state); the per-event work is one regex sweep
        over the ``Value`` run.  Field semantics replicate the tree path
        exactly: attribute values are unescaped, value text is stripped of
        raw boundary whitespace before unescaping.
        """
        fragment = match.group(1)
        description = self._decode_plans.get(fragment)
        if description is None:
            description = XmlTypeDescription.from_xml_element(parse_xml(fragment))
            if len(fragment) <= _DECODE_PLAN_MAX_FRAGMENT_BYTES:
                if len(self._decode_plans) >= _DECODE_PLAN_CAPACITY:
                    # FIFO eviction: steady state is a handful of event
                    # types, so reaching the cap at all means fragment
                    # churn, not reuse.
                    del self._decode_plans[next(iter(self._decode_plans))]
                self._decode_plans[fragment] = description
        values: Dict[str, Any] = {}
        body = match.group(2)
        if body:
            for value_match in _CANONICAL_VALUE(body):
                raw = value_match.group(3)
                values[unescape_text(value_match.group(1))] = _parse_value(
                    unescape_text(value_match.group(2)),
                    unescape_text(raw.strip()) if raw else "",
                )
        return self._build_event(description, values)

    def _decode_tree(self, document: str) -> Any:
        """The original decoder: parse the full document into an element tree."""
        root = parse_xml(document)
        description_el = root.find("TypeDescription")
        if description_el is None:
            raise PSException("not an XML event: missing TypeDescription")
        description = XmlTypeDescription.from_xml_element(description_el)
        values: Dict[str, Any] = {}
        values_el = root.find("Values")
        if values_el is not None:
            for child in values_el.find_all("Value"):
                values[child.attributes["name"]] = _parse_value(
                    child.attributes.get("kind", "str"), child.text
                )
        return self._build_event(description, values)

    def _build_event(self, description: XmlTypeDescription, values: Dict[str, Any]) -> Any:
        # lineage() always starts with the concrete type name, so walking it
        # reduces to one lookup: a known concrete class yields an instance,
        # anything else (known ancestor or not) yields a DynamicEvent.
        cls = self._known.get(description.name)
        if cls is not None:
            instance = object.__new__(cls)
            instance.__dict__.update(values)
            return instance
        return DynamicEvent(description, values)


def _render(value: Any) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    return str(value)


__all__ = [
    "DynamicEvent",
    "XmlEventCodec",
    "XmlTypeDescription",
    "describe_type",
]
