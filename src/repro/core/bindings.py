"""The TPS binding registry: how infrastructures plug into ``newInterface``.

The paper's ``TPSEngine.newInterface(String name, ...)`` selects the
underlying infrastructure by *name* ("JXTA" in every listing of the paper).
The layering argument of Section 4 -- TPS is a thin typed layer that can sit
on top of any substrate offering propagation and discovery -- applies to the
reproduction's own code too: a new substrate should plug in by registering a
binding, not by editing ``TPSEngine``.

This module is that plug point:

* :class:`TPSBinding` -- the structural protocol a binding's interfaces must
  satisfy (the seven Figure 8 operations plus the v2 ``close`` lifecycle);
* :class:`BindingRequest` -- everything ``new_interface`` knows when it asks
  a binding for an interface (event type, criteria, peer, codec, config,
  local bus, the paper's ``instance``/``argv`` arguments);
* :func:`register_binding` / :func:`get_binding` /
  :func:`registered_bindings` -- the process-wide name -> factory registry.

The built-in bindings self-register when their modules are imported:
``"LOCAL"`` (:mod:`repro.core.local_engine`), ``"JXTA"``
(:mod:`repro.core.jxta_engine`) and ``"SHARDED"``
(:mod:`repro.core.sharded_engine`).  ``TPSEngine.new_interface`` resolves
purely through :func:`get_binding`, so third-party bindings registered by
application code are first-class citizens.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    Type,
    runtime_checkable,
)

from repro.core.exceptions import PSException


@runtime_checkable
class TPSBinding(Protocol):
    """What a binding-produced interface must offer (structural typing).

    The seven operations of the paper's Figure 8 -- ``publish``,
    ``subscribe`` (single or list form), ``unsubscribe`` (one or all),
    ``objects_received``/``objects_sent`` -- plus the v2 ``close`` lifecycle.
    :class:`~repro.core.interface.TPSInterface` implements all of these, so
    subclassing it is the easiest way to satisfy the protocol; any
    structurally conforming object is accepted just the same.
    """

    def publish(self, event: Any) -> Any: ...

    def subscribe(self, callback: Any, exception_handler: Any = None) -> Any: ...

    def unsubscribe(self, callback: Any = None, exception_handler: Any = None) -> int: ...

    def objects_received(self) -> List[Any]: ...

    def objects_sent(self) -> List[Any]: ...

    def close(self) -> None: ...


@dataclass(frozen=True)
class BindingRequest:
    """One ``new_interface`` call, as seen by a binding factory.

    Mirrors the paper's ``newInterface(String name, Criteria c, Type t,
    String[] arg)`` plus the engine-level construction arguments the Python
    rendering adds (``peer``, ``codec``, ``config``, ``local_bus``).  A
    factory picks what it needs and must raise :class:`PSException` when a
    required argument is missing (e.g. the JXTA binding without a peer).
    """

    event_type: Type[Any]
    criteria: Optional[Any] = None
    instance: Optional[Any] = None
    argv: Optional[Tuple[str, ...]] = None
    peer: Optional[Any] = None
    codec: Optional[Any] = None
    config: Optional[Any] = None
    local_bus: Optional[Any] = None


#: A binding factory: takes one :class:`BindingRequest`, returns an interface.
BindingFactory = Callable[[BindingRequest], Any]


@dataclass(frozen=True)
class BindingSpec:
    """One registered binding: its name, factory and capability tags."""

    name: str
    factory: BindingFactory
    #: Free-form capability tags ("in-process", "distributed", "sharded", ...)
    #: for applications that pick a binding by feature rather than by name.
    capabilities: frozenset = field(default_factory=frozenset)

    def create(self, request: BindingRequest) -> Any:
        """Build an interface for ``request`` through this binding's factory."""
        return self.factory(request)


_REGISTRY: Dict[str, BindingSpec] = {}


def _normalize(name: str) -> str:
    if not isinstance(name, str) or not name.strip():
        raise PSException(f"binding name must be a non-empty string, got {name!r}")
    return name.strip().upper()


def register_binding(
    name: str,
    factory: BindingFactory,
    *,
    capabilities: Sequence[str] = (),
    replace: bool = False,
) -> BindingSpec:
    """Register a binding factory under ``name`` (case-insensitive).

    Returns the stored :class:`BindingSpec`.  Re-registering an existing name
    raises :class:`PSException` unless ``replace=True`` (the built-in
    bindings register with ``replace=True`` so module reloads stay safe).
    """
    key = _normalize(name)
    if not callable(factory):
        raise PSException(f"binding factory for {key!r} must be callable, got {factory!r}")
    if key in _REGISTRY and not replace:
        raise PSException(
            f"a TPS binding named {key!r} is already registered; "
            "pass replace=True to override it"
        )
    spec = BindingSpec(name=key, factory=factory, capabilities=frozenset(capabilities))
    _REGISTRY[key] = spec
    return spec


def unregister_binding(name: str) -> bool:
    """Remove a binding from the registry; True if it was registered."""
    return _REGISTRY.pop(_normalize(name), None) is not None


def get_binding(name: str) -> BindingSpec:
    """Look up a registered binding, or raise listing what *is* registered."""
    key = _normalize(name)
    spec = _REGISTRY.get(key)
    if spec is None:
        registered = ", ".join(repr(known) for known in registered_bindings())
        raise PSException(
            f"unknown TPS binding {name!r}; registered bindings: {registered or '(none)'}"
        )
    return spec


def registered_bindings() -> Tuple[str, ...]:
    """The names of every registered binding, sorted."""
    return tuple(sorted(_REGISTRY))


def binding_capabilities(name: str) -> frozenset:
    """The capability tags of a registered binding."""
    return get_binding(name).capabilities


__all__ = [
    "BindingFactory",
    "BindingRequest",
    "BindingSpec",
    "TPSBinding",
    "binding_capabilities",
    "get_binding",
    "register_binding",
    "registered_bindings",
    "unregister_binding",
]
