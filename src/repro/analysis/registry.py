"""The lint-rule registry: how rules plug into the engine.

Mirrors the TPS binding registry of :mod:`repro.core.bindings`: a rule is a
class registered under its stable rule id, the engine resolves rule ids
purely through :func:`get_rule`, and an unknown id raises an error listing
what *is* registered -- so application- or test-registered rules are
first-class citizens exactly like the built-in pack of
:mod:`repro.analysis.rules`.

A rule subclasses :class:`LintRule` and implements :meth:`LintRule.check`,
yielding :class:`~repro.analysis.findings.Finding` objects for one parsed
module.  Per-package configuration (which packages a rule runs over, and any
rule options such as the RL003 snapshot-attribute set) lives in the
declarative profile table consumed by :class:`repro.analysis.engine.LintEngine`,
not in the rule class -- the class encodes *what* the invariant is, the
profile encodes *where* it applies.
"""

from __future__ import annotations

import ast
from typing import Any, ClassVar, Dict, Iterator, Mapping, Tuple, Type

from repro.analysis.findings import Finding


class LintConfigError(Exception):
    """A misconfigured lint run: unknown rule, malformed baseline, bad path.

    The CLI maps this to exit code 2 (usage error), distinct from exit code
    1 (findings).
    """


class LintRule:
    """Base class of all lint rules.

    Subclasses declare a stable ``rule_id`` (``"RL001"``), a short kebab-case
    ``title`` (``"no-raw-acquire"``), a one-line ``rationale`` and optional
    ``default_options`` (overridable per package through the engine profile).
    """

    rule_id: ClassVar[str] = ""
    title: ClassVar[str] = ""
    rationale: ClassVar[str] = ""
    default_options: ClassVar[Mapping[str, Any]] = {}

    def check(self, tree: ast.Module, context: "LintContext") -> Iterator[Finding]:
        """Yield findings for one parsed module.  Must be overridden."""
        raise NotImplementedError(f"{type(self).__name__} does not implement check()")


class LintContext:
    """What a rule sees about the module it is checking."""

    __slots__ = ("path", "module", "lines", "options", "rule_id", "hint")

    def __init__(
        self,
        *,
        path: str,
        module: str,
        lines: Tuple[str, ...],
        options: Mapping[str, Any],
        rule_id: str,
        hint: str = "",
    ) -> None:
        self.path = path
        self.module = module
        self.lines = lines
        self.options = options
        self.rule_id = rule_id
        self.hint = hint

    def snippet(self, line: int) -> str:
        """The stripped source text of a 1-based line (the baseline key)."""
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    def finding(self, node: ast.AST, message: str, hint: str = "") -> Finding:
        """Build a finding anchored at ``node``."""
        line = getattr(node, "lineno", 1)
        column = getattr(node, "col_offset", 0)
        return Finding(
            rule=self.rule_id,
            path=self.path,
            line=line,
            column=column,
            message=message,
            hint=hint or self.hint,
            snippet=self.snippet(line),
        )


_REGISTRY: Dict[str, Type[LintRule]] = {}


def _normalize(rule_id: str) -> str:
    if not isinstance(rule_id, str) or not rule_id.strip():
        raise LintConfigError(f"rule id must be a non-empty string, got {rule_id!r}")
    return rule_id.strip().upper()


def register_rule(rule_class: Type[LintRule], *, replace: bool = False) -> Type[LintRule]:
    """Register a rule class under its ``rule_id`` (case-insensitive).

    Re-registering an existing id raises :class:`LintConfigError` unless
    ``replace=True`` (the built-in pack registers with ``replace=True`` so
    module reloads stay safe) -- the same contract as
    :func:`repro.core.bindings.register_binding`.
    """
    if not (isinstance(rule_class, type) and issubclass(rule_class, LintRule)):
        raise LintConfigError(
            f"lint rules must subclass LintRule, got {rule_class!r}"
        )
    key = _normalize(rule_class.rule_id)
    if key in _REGISTRY and not replace:
        raise LintConfigError(
            f"a lint rule with id {key!r} is already registered "
            f"({_REGISTRY[key].__name__}); pass replace=True to override it"
        )
    _REGISTRY[key] = rule_class
    return rule_class


def unregister_rule(rule_id: str) -> bool:
    """Remove a rule from the registry; True if it was registered."""
    return _REGISTRY.pop(_normalize(rule_id), None) is not None


def get_rule(rule_id: str) -> Type[LintRule]:
    """Look up a registered rule, or raise listing what *is* registered."""
    key = _normalize(rule_id)
    rule_class = _REGISTRY.get(key)
    if rule_class is None:
        registered = ", ".join(repr(known) for known in registered_rules())
        raise LintConfigError(
            f"unknown lint rule {rule_id!r}; registered rules: {registered or '(none)'}"
        )
    return rule_class


def registered_rules() -> Tuple[str, ...]:
    """The registered rule ids, sorted."""
    return tuple(sorted(_REGISTRY))


def rule_titles() -> Dict[str, str]:
    """Rule id -> ``title -- rationale`` for ``lint --list-rules``."""
    return {
        rule_id: f"{_REGISTRY[rule_id].title} -- {_REGISTRY[rule_id].rationale}"
        for rule_id in registered_rules()
    }


__all__ = [
    "LintConfigError",
    "LintContext",
    "LintRule",
    "get_rule",
    "register_rule",
    "registered_rules",
    "rule_titles",
    "unregister_rule",
]
