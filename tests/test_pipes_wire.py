"""Tests for pipes, the Pipe Binding Protocol and the WIRE service."""

from __future__ import annotations

import pytest

from repro.jxta.advertisement import PipeAdvertisement
from repro.jxta.errors import PipeError
from repro.jxta.message import Message
from repro.jxta.pipes import PipeKind
from repro.jxta.wire import WIRE_MSG_ID_ELEMENT, WireService


def _pipe_adv(name="test-pipe", kind=PipeKind.UNICAST):
    return PipeAdvertisement(name=name, pipe_kind=kind.value)


def _message(text="x"):
    message = Message()
    message.add("body", text)
    return message


class TestPipeBinding:
    def test_input_pipe_binding_announced_and_resolved(self, two_peers):
        alpha, beta, builder = two_peers
        advertisement = _pipe_adv()
        received = []
        beta.world_group.pipe_service.create_input_pipe(
            advertisement, lambda m, src: received.append((m, src))
        )
        builder.settle(rounds=2)
        output = alpha.world_group.pipe_service.create_output_pipe(advertisement)
        builder.settle(rounds=2)
        assert output.resolved_peers() == [beta.peer_id]
        output.send(_message("hello"))
        builder.settle(rounds=2)
        assert len(received) == 1
        assert received[0][0].get_text("body") == "hello"
        assert received[0][1] == alpha.peer_id

    def test_output_pipe_resolution_query_finds_existing_binding(self, two_peers):
        alpha, beta, builder = two_peers
        advertisement = _pipe_adv()
        # The input pipe is created while alpha is not listening for
        # announcements (no output pipe yet)...
        beta.world_group.pipe_service.create_input_pipe(advertisement, announce=False)
        builder.settle(rounds=2)
        # ...so the output pipe's explicit PBP resolve query must find it.
        output = alpha.world_group.pipe_service.create_output_pipe(advertisement)
        builder.settle(rounds=2)
        assert output.resolved_peers() == [beta.peer_id]

    def test_unicast_send_without_binding_raises(self, two_peers):
        alpha, _beta, builder = two_peers
        output = alpha.world_group.pipe_service.create_output_pipe(_pipe_adv())
        builder.settle(rounds=2)
        with pytest.raises(PipeError):
            output.send(_message())

    def test_unicast_targets_single_peer(self, lan):
        builder = lan
        sender = builder.peer_named("peer-0")
        receivers = [builder.peer_named("peer-1"), builder.peer_named("peer-2")]
        advertisement = _pipe_adv(kind=PipeKind.UNICAST)
        inboxes = []
        for receiver in receivers:
            inbox = []
            receiver.world_group.pipe_service.create_input_pipe(
                advertisement, lambda m, s, inbox=inbox: inbox.append(m)
            )
            inboxes.append(inbox)
        builder.settle(rounds=2)
        output = sender.world_group.pipe_service.create_output_pipe(advertisement)
        builder.settle(rounds=2)
        sent = output.send(_message())
        builder.settle(rounds=2)
        assert sent == 1
        assert sum(len(inbox) for inbox in inboxes) == 1

    def test_propagate_pipe_reaches_all_bound_peers(self, lan):
        builder = lan
        sender = builder.peer_named("peer-0")
        receivers = [builder.peer_named("peer-1"), builder.peer_named("peer-2")]
        advertisement = _pipe_adv(kind=PipeKind.PROPAGATE)
        inboxes = []
        for receiver in receivers:
            inbox = []
            receiver.world_group.pipe_service.create_input_pipe(
                advertisement, lambda m, s, inbox=inbox: inbox.append(m)
            )
            inboxes.append(inbox)
        builder.settle(rounds=2)
        output = sender.world_group.pipe_service.create_output_pipe(advertisement)
        builder.settle(rounds=2)
        assert output.send(_message()) == 2
        builder.settle(rounds=2)
        assert all(len(inbox) == 1 for inbox in inboxes)

    def test_closing_input_pipe_unbinds(self, two_peers):
        alpha, beta, builder = two_peers
        advertisement = _pipe_adv()
        pipe = beta.world_group.pipe_service.create_input_pipe(advertisement)
        builder.settle(rounds=2)
        output = alpha.world_group.pipe_service.create_output_pipe(advertisement)
        builder.settle(rounds=2)
        assert output.resolved_peers()
        pipe.close()
        builder.settle(rounds=2)
        assert output.resolved_peers() == []
        assert pipe.closed
        with pytest.raises(PipeError):
            pipe.add_listener(lambda m, s: None)

    def test_closed_output_pipe_refuses_send(self, two_peers):
        alpha, _beta, _builder = two_peers
        output = alpha.world_group.pipe_service.create_output_pipe(_pipe_adv())
        output.close()
        with pytest.raises(PipeError):
            output.send(_message())

    def test_pipe_survives_peer_address_change(self, two_peers):
        """The PBP promise: bindings are by peer UUID, not by network address."""
        alpha, beta, builder = two_peers
        advertisement = _pipe_adv()
        received = []
        beta.world_group.pipe_service.create_input_pipe(
            advertisement, lambda m, s: received.append(m)
        )
        builder.settle(rounds=2)
        output = alpha.world_group.pipe_service.create_output_pipe(advertisement)
        builder.settle(rounds=2)
        output.send(_message("before"))
        builder.settle(rounds=2)
        # beta "crashes and comes up again" at a different address.
        beta.restart_at_address("beta-new-address")
        # alpha learns the new address (in JXTA this comes from the refreshed
        # peer advertisement / resolver traffic).
        alpha.endpoint.learn_address(beta.peer_id, "beta-new-address")
        output.send(_message("after"))
        builder.settle(rounds=2)
        assert [m.get_text("body") for m in received] == ["before", "after"]


class TestWireService:
    def _wire_pair(self, builder, sender, receivers, **wire_kwargs):
        advertisement = _pipe_adv(name="wire-pipe", kind=PipeKind.WIRE)
        inboxes = []
        for receiver in receivers:
            inbox = []
            receiver.world_group.wire.create_input_pipe(
                advertisement, lambda m, s, inbox=inbox: inbox.append(m)
            )
            inboxes.append(inbox)
        builder.settle(rounds=2)
        output = sender.world_group.wire.create_output_pipe(advertisement, **wire_kwargs)
        builder.settle(rounds=2)
        return advertisement, output, inboxes

    def test_wire_send_reaches_all_subscribers(self, lan):
        builder = lan
        sender = builder.peer_named("peer-0")
        receivers = [builder.peer_named("peer-1"), builder.peer_named("peer-2")]
        _adv, output, inboxes = self._wire_pair(builder, sender, receivers)
        receipt = output.send(_message("event"))
        builder.settle(rounds=2)
        assert receipt.targets == 2
        assert all(len(inbox) == 1 for inbox in inboxes)
        assert all(inbox[0].get_text("body") == "event" for inbox in inboxes)
        # The wire stamps its message id and source elements.
        assert inboxes[0][0].get_text(WIRE_MSG_ID_ELEMENT)

    def test_send_receipt_costs_grow_with_subscribers(self, builder):
        builder.add_rendezvous("rdv-0")
        sender = builder.add_peer("sender")
        one = [builder.add_peer("r-0")]
        many = [builder.add_peer(f"m-{i}") for i in range(4)]
        builder.settle(rounds=4)
        adv_one, out_one, _ = self._wire_pair(builder, sender, one)
        receipts_one = [out_one.send(_message()) for _ in range(10)]
        # A separate pipe with four subscribers.
        advertisement = _pipe_adv(name="wire-4", kind=PipeKind.WIRE)
        for peer in many:
            peer.world_group.wire.create_input_pipe(advertisement, lambda m, s: None)
        builder.settle(rounds=2)
        out_many = sender.world_group.wire.create_output_pipe(advertisement)
        builder.settle(rounds=2)
        receipts_many = [out_many.send(_message()) for _ in range(10)]
        assert receipts_one[0].targets == 1
        assert receipts_many[0].targets == 4
        mean_one = sum(r.cpu_time for r in receipts_one) / len(receipts_one)
        mean_many = sum(r.cpu_time for r in receipts_many) / len(receipts_many)
        assert mean_many > mean_one * 1.5

    def test_extra_send_cost_is_charged(self, two_peers):
        alpha, beta, builder = two_peers
        advertisement = _pipe_adv(kind=PipeKind.WIRE)
        beta.world_group.wire.create_input_pipe(advertisement, lambda m, s: None)
        builder.settle(rounds=2)
        plain = alpha.world_group.wire.create_output_pipe(advertisement)
        costly = alpha.world_group.wire.create_output_pipe(
            advertisement, extra_send_cost=0.5, resolve=False
        )
        builder.settle(rounds=2)
        assert costly.send(_message()).cpu_time - plain.send(_message()).cpu_time > 0.3

    def test_wire_delivery_is_serialised_and_queue_bounded(self, two_peers):
        alpha, beta, builder = two_peers
        advertisement = _pipe_adv(kind=PipeKind.WIRE)
        inbox = []
        beta.world_group.wire.create_input_pipe(advertisement, lambda m, s: inbox.append(m))
        builder.settle(rounds=2)
        output = alpha.world_group.wire.create_output_pipe(advertisement)
        builder.settle(rounds=2)
        # Flood far beyond the receive queue limit in one burst.
        limit = beta.cost_model.receive_queue_limit
        for _ in range(limit * 3):
            output.send(_message())
        builder.settle(rounds=64)
        dropped = beta.metrics.counters().get("wire_messages_dropped", 0)
        delivered = beta.metrics.counters().get("wire_messages_delivered", 0)
        assert dropped > 0
        assert delivered + dropped == limit * 3
        assert len(inbox) == delivered

    def test_duplicate_suppression_flag(self, two_peers):
        alpha, beta, builder = two_peers
        advertisement = _pipe_adv(kind=PipeKind.WIRE)
        inbox = []
        beta.world_group.wire.duplicate_suppression = True
        beta.world_group.wire.create_input_pipe(advertisement, lambda m, s: inbox.append(m))
        builder.settle(rounds=2)
        output = alpha.world_group.wire.create_output_pipe(advertisement)
        builder.settle(rounds=2)
        receipt = output.send(_message("once"))
        builder.settle(rounds=4)
        # Re-inject the very same wire message by sending it again through the
        # endpoint (as a propagation echo would).
        wire_message = _message("once")
        wire_message.add(WIRE_MSG_ID_ELEMENT, receipt.wire_message_id)
        alpha.endpoint.send(
            beta.peer_id, wire_message, WireService.WireName, advertisement.pipe_id.to_urn()
        )
        builder.settle(rounds=4)
        assert len(inbox) == 1
        assert beta.metrics.counters().get("wire_duplicates_suppressed", 0) == 1

    def test_connected_publishers_tracked(self, lan):
        builder = lan
        receiver = builder.peer_named("peer-0")
        senders = [builder.peer_named("peer-1"), builder.peer_named("peer-2")]
        advertisement = _pipe_adv(kind=PipeKind.WIRE)
        receiver.world_group.wire.create_input_pipe(advertisement, lambda m, s: None)
        builder.settle(rounds=2)
        outputs = [
            sender.world_group.wire.create_output_pipe(advertisement) for sender in senders
        ]
        builder.settle(rounds=2)
        for output in outputs:
            output.send(_message())
        builder.settle(rounds=4)
        assert receiver.world_group.wire.connected_publishers(advertisement.pipe_id) == 2

    def test_close_input_pipe_stops_delivery(self, two_peers):
        alpha, beta, builder = two_peers
        advertisement = _pipe_adv(kind=PipeKind.WIRE)
        inbox = []
        pipe = beta.world_group.wire.create_input_pipe(
            advertisement, lambda m, s: inbox.append(m)
        )
        builder.settle(rounds=2)
        output = alpha.world_group.wire.create_output_pipe(advertisement)
        builder.settle(rounds=2)
        output.send(_message("first"))
        builder.settle(rounds=4)
        beta.world_group.wire.close_input_pipe(pipe)
        builder.settle(rounds=2)
        output.send(_message("second"))
        builder.settle(rounds=4)
        assert [m.get_text("body") for m in inbox] == ["first"]

    def test_send_without_bindings_falls_back_to_propagation(self, two_peers):
        alpha, beta, builder = two_peers
        advertisement = _pipe_adv(kind=PipeKind.WIRE)
        output = alpha.world_group.wire.create_output_pipe(advertisement)
        # beta binds *after* the output pipe resolved nothing.
        inbox = []
        beta.world_group.wire.create_input_pipe(advertisement, lambda m, s: inbox.append(m))
        receipt = output.send(_message("early"))
        builder.settle(rounds=4)
        assert receipt.targets == 0
        assert len(inbox) == 1  # the propagation fallback still delivered it
