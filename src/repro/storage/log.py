"""``LogHistory``: the append-only, crash-recoverable history store.

File format (one flat segment file per store direction)::

    record := length(4 bytes, big-endian, > 0) || payload(length bytes)
    payload := codec.encode((event, meta))

Offsets are the record's index in the file, so they are dense, start at 0
and -- unlike the bounded ring -- never evict: ``start_offset`` stays 0 and
``since(offset)`` can replay the complete history of the engine across
process restarts.

Durability model: appends go through one buffered writer and are
fsync-batched (every ``fsync_every`` records, plus on ``close``), the
classic group-commit trade-off -- a crash can lose at most the last
unsynced batch, never corrupt what was synced before it.  On open the store
scans the file and **truncates the torn tail**: a record whose length header
or payload is incomplete (the crash happened mid-write), or whose payload no
longer decodes, is dropped along with everything after it, so the store
always reopens to a prefix of complete records (``recovered_records`` /
``truncated_bytes`` report what recovery found).

Reads (``snapshot``/``since``) flush the write buffer and scan the file with
an independent descriptor, skipping unwanted records header-by-header; they
keep working after ``close()`` -- the paper's contract that a closed
interface still answers its history queries extends to the durable store.

In-memory footprint is O(1): the store keeps only counters, never the
records, so a ``history="log"`` engine honours the "no engine's in-memory
history grows beyond its configured bound" guarantee trivially.
"""

from __future__ import annotations

import os
import threading
from typing import Any, Callable, List, Tuple

from repro.core.exceptions import PSException
from repro.core.history import HistoryStore

#: Bytes of the per-record big-endian length prefix.
_HEADER_SIZE = 4

#: Default group-commit batch: fsync once per this many appends.
DEFAULT_FSYNC_EVERY = 64


class LogHistory(HistoryStore):
    """Append-only history store over length-prefixed codec records."""

    kind = "log"

    def __init__(
        self,
        path: str,
        *,
        encode: Callable[[Any], bytes],
        decode: Callable[[bytes], Any],
        fsync_every: int = DEFAULT_FSYNC_EVERY,
    ) -> None:
        self.path = path
        self._encode = encode
        self._decode = decode
        self.fsync_every = max(1, int(fsync_every))
        self._lock = threading.Lock()
        self._closed = False
        #: Appends buffered since the last fsync (group commit).
        self._pending = 0
        #: Complete records found by crash recovery on open.
        self.recovered_records = 0
        #: Torn-tail bytes dropped by crash recovery on open.
        self.truncated_bytes = 0
        self._next = self._recover()
        self._writer = open(self.path, "ab")

    # ------------------------------------------------------------- recovery

    def _recover(self) -> int:
        """Scan the file, truncate any torn tail, return the record count."""
        try:
            size = os.path.getsize(self.path)
        except OSError:
            return 0
        records = 0
        good_end = 0
        last_start = 0
        last_payload = b""
        with open(self.path, "rb") as segment:
            while True:
                start = segment.tell()
                header = segment.read(_HEADER_SIZE)
                if len(header) < _HEADER_SIZE:
                    break  # clean EOF, or a torn length prefix
                length = int.from_bytes(header, "big")
                if length <= 0:
                    break  # a zeroed/corrupt header can only be a torn write
                payload = segment.read(length)
                if len(payload) < length:
                    break  # torn payload
                records += 1
                good_end = segment.tell()
                last_start = start
                last_payload = payload
        if records:
            # A tail record can be structurally complete yet undecodable
            # (its bytes were only partially flushed before an old tail was
            # overwritten); verify the last record round-trips and drop it
            # too when it does not.
            try:
                self._decode(last_payload)
            except Exception:  # noqa: BLE001 - any decode failure means a torn tail
                records -= 1
                good_end = last_start
        self.recovered_records = records
        self.truncated_bytes = size - good_end
        if good_end < size:
            with open(self.path, "r+b") as segment:
                segment.truncate(good_end)
        return records

    # -------------------------------------------------------------- writing

    def append(self, event: Any, meta: Any = None) -> int:
        payload = self._encode((event, meta))
        with self._lock:
            if self._closed:
                raise PSException(f"the history log {self.path!r} is closed")
            self._writer.write(len(payload).to_bytes(_HEADER_SIZE, "big"))
            self._writer.write(payload)
            self._pending += 1
            if self._pending >= self.fsync_every:
                self._sync_locked()
            offset = self._next
            self._next = offset + 1
            return offset

    def _sync_locked(self) -> None:
        self._writer.flush()
        os.fsync(self._writer.fileno())
        self._pending = 0

    def sync(self) -> None:
        """Force the group-commit fsync now (crash loses nothing before it)."""
        with self._lock:
            if not self._closed and self._pending:
                self._sync_locked()

    # -------------------------------------------------------------- reading

    def since(self, offset: int) -> List[Tuple[int, Any, Any]]:
        with self._lock:
            if not self._closed:
                # Make buffered appends visible to the reading descriptor;
                # no fsync needed for same-process reads.
                self._writer.flush()
            end = self._next
        entries: List[Tuple[int, Any, Any]] = []
        if offset >= end:
            return entries
        with open(self.path, "rb") as segment:
            index = 0
            while index < end:
                header = segment.read(_HEADER_SIZE)
                if len(header) < _HEADER_SIZE:
                    break
                length = int.from_bytes(header, "big")
                if index < offset:
                    segment.seek(length, os.SEEK_CUR)
                else:
                    payload = segment.read(length)
                    if len(payload) < length:
                        break
                    event, meta = self._decode(payload)
                    entries.append((index, event, meta))
                index += 1
        return entries

    def snapshot(self) -> List[Any]:
        return [event for _, event, _ in self.since(0)]

    def __len__(self) -> int:
        with self._lock:
            return self._next

    @property
    def next_offset(self) -> int:
        with self._lock:
            return self._next

    @property
    def start_offset(self) -> int:
        return 0

    # ------------------------------------------------------------ lifecycle

    def clear(self) -> None:
        """Destructive reset: truncate the file and restart offsets at 0.

        Unlike :meth:`RingHistory.clear <repro.core.history.RingHistory.clear>`
        this resets the offset counter too -- a reopened store recounts the
        file, so keeping a phantom in-memory base would desync them.
        """
        with self._lock:
            if self._closed:
                raise PSException(f"the history log {self.path!r} is closed")
            self._writer.flush()
            self._writer.truncate(0)
            self._writer.seek(0)
            self._pending = 0
            self._next = 0

    def close(self) -> None:
        """Flush, fsync and close the writer; reads keep working."""
        with self._lock:
            if self._closed:
                return
            self._sync_locked()
            self._writer.close()
            self._closed = True

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"LogHistory({self.path!r}, records={len(self)})"


__all__ = ["DEFAULT_FSYNC_EVERY", "LogHistory"]
