"""Fault-injection plan tests: determinism, link resolution, network counters.

The :class:`~repro.net.faults.FaultPlan` is the chaos layer's contract with
the reliability machinery above it: deterministic under a fixed seed (so
every chaos test is reproducible), isolated from the network's own noise
source (installing a plan must not shift existing seeded behaviour), and
fully accounted (every dropped/duplicated/delayed packet shows up in a
counter, never vanishing silently).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.net.cost import NoiseSource
from repro.net.faults import ANY, FaultPlan, LinkFaults
from repro.net.firewall import Firewall
from repro.net.network import Network, NoRouteError, UnknownNodeError
from repro.net.packet import Packet
from repro.net.simclock import Simulator


class TestLinkResolution:
    def test_exact_link_beats_wildcards(self):
        plan = FaultPlan()
        exact = LinkFaults(drop=0.5)
        plan.set_link(ANY, ANY, LinkFaults(drop=0.1))
        plan.set_link("a", ANY, LinkFaults(drop=0.2))
        plan.set_link(ANY, "b", LinkFaults(drop=0.3))
        plan.set_link("a", "b", exact)
        assert plan.faults_for("a", "b") is exact

    def test_resolution_precedence_order(self):
        plan = FaultPlan(default=LinkFaults(drop=0.05))
        src_any = LinkFaults(drop=0.2)
        any_dst = LinkFaults(drop=0.3)
        plan.set_link("a", ANY, src_any)
        plan.set_link(ANY, "b", any_dst)
        assert plan.faults_for("a", "x") is src_any
        assert plan.faults_for("x", "b") is any_dst
        # src-side wildcard wins over dst-side when both match.
        assert plan.faults_for("a", "b") is src_any
        # Nothing matches: the plan-wide default applies.
        assert plan.faults_for("x", "y") is plan.default

    def test_symmetric_installs_both_directions(self):
        plan = FaultPlan()
        faults = LinkFaults(duplicate=0.4)
        plan.set_link("a", "b", faults, symmetric=True)
        assert plan.faults_for("a", "b") is faults
        assert plan.faults_for("b", "a") is faults

    def test_clear_link_restores_default(self):
        plan = FaultPlan(default=None)
        plan.set_link("a", "b", LinkFaults(drop=1.0))
        plan.clear_link("a", "b")
        assert plan.faults_for("a", "b") is None


class TestScriptedDrops:
    def test_drop_next_consumes_exactly_count(self):
        plan = FaultPlan()
        plan.drop_next("a", "b", count=2)
        assert plan.decide("a", "b").drop
        assert plan.decide("a", "b").drop
        decision = plan.decide("a", "b")
        assert not decision.drop
        assert plan.scripted == 2
        assert plan.pending_scripted_drops("a", "b") == 0

    def test_scripted_drops_are_per_link(self):
        plan = FaultPlan()
        plan.drop_next("a", "b")
        assert not plan.decide("b", "a").drop
        assert plan.decide("a", "b").drop

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan().drop_next("a", "b", count=-1)

    def test_scripted_decisions_are_flagged(self):
        plan = FaultPlan(default=LinkFaults(drop=1.0))
        plan.drop_next("a", "b")
        assert plan.decide("a", "b").scripted
        # Probabilistic drops are not flagged as scripted.
        assert not plan.decide("a", "b").scripted


class TestDeterminism:
    @given(seed=st.integers(min_value=0, max_value=2**31), draws=st.integers(1, 200))
    @settings(max_examples=30, deadline=None)
    def test_same_seed_same_decision_sequence(self, seed, draws):
        spec = LinkFaults(drop=0.2, duplicate=0.3, reorder=0.4, delay=0.3)
        plans = [FaultPlan(seed=seed, default=spec) for _ in range(2)]
        sequences = [
            [plan.decide("a", "b") for _ in range(draws)] for plan in plans
        ]
        assert sequences[0] == sequences[1]

    @given(
        seed=st.integers(min_value=0, max_value=2**31),
        count=st.integers(0, 20),
    )
    @settings(max_examples=30, deadline=None)
    def test_scripted_drops_fire_regardless_of_seed(self, seed, count):
        plan = FaultPlan(seed=seed)
        if count:
            plan.drop_next("a", "b", count=count)
        outcomes = [plan.decide("a", "b").drop for _ in range(count + 5)]
        assert outcomes == [True] * count + [False] * 5

    def test_chaos_plans_with_same_seed_agree(self):
        left, right = FaultPlan.chaos(seed=7), FaultPlan.chaos(seed=7)
        for _ in range(100):
            assert left.decide("x", "y") == right.decide("x", "y")

    def test_stats_account_for_every_decision(self):
        plan = FaultPlan(seed=3, default=LinkFaults(drop=0.5, duplicate=0.5))
        for _ in range(200):
            plan.decide("a", "b")
        assert plan.decisions == 200
        assert plan.dropped > 0
        assert plan.duplicated > 0


def _two_nodes(network):
    sender = network.create_node("a")
    receiver = network.create_node("b")
    received = []
    receiver.add_handler(received.append)
    return sender, received


class TestNetworkFaultCounters:
    def _network(self, plan=None):
        return Network(Simulator(), noise=NoiseSource(1), fault_plan=plan)

    def test_dropped_packets_are_counted_not_delivered(self):
        network = self._network(FaultPlan(default=LinkFaults(drop=1.0)))
        sender, received = _two_nodes(network)
        sender.send(Packet(source="a", destination="b", payload=b"x"))
        network.simulator.run()
        assert received == []
        counters = network.metrics.counters()
        assert counters["faults_dropped"] == 1
        assert counters["packets_lost"] == 1

    def test_duplicated_packets_deliver_twice(self):
        network = self._network(FaultPlan(default=LinkFaults(duplicate=1.0)))
        sender, received = _two_nodes(network)
        sender.send(Packet(source="a", destination="b", payload=b"x"))
        network.simulator.run()
        assert len(received) == 2
        assert network.metrics.counters()["faults_duplicated"] == 1

    def test_delayed_packets_arrive_late_but_arrive(self):
        network = self._network(
            FaultPlan(default=LinkFaults(delay=1.0, delay_window=0.5))
        )
        sender, received = _two_nodes(network)
        sender.send(Packet(source="a", destination="b", payload=b"x"))
        network.simulator.run()
        assert len(received) == 1
        assert network.metrics.counters()["faults_delayed"] == 1

    def test_scripted_drop_counts_separately(self):
        plan = FaultPlan()
        network = self._network(plan)
        sender, received = _two_nodes(network)
        plan.drop_next("a", "b")
        sender.send(Packet(source="a", destination="b", payload=b"x"))
        sender.send(Packet(source="a", destination="b", payload=b"y"))
        network.simulator.run()
        assert len(received) == 1
        counters = network.metrics.counters()
        assert counters["faults_scripted"] == 1
        assert counters["faults_dropped"] == 1

    def test_installing_a_plan_does_not_shift_existing_noise(self):
        # Same seed, same traffic: latencies (driven by the network's own
        # NoiseSource) must be identical with and without a no-op fault plan.
        arrivals = []
        for plan in (None, FaultPlan(default=LinkFaults())):
            network = Network(Simulator(), noise=NoiseSource(9), fault_plan=plan)
            sender, _ = _two_nodes(network)
            times = []
            network.node("b").add_handler(
                lambda packet, network=network: times.append(network.simulator.now)
            )
            for index in range(5):
                sender.send(Packet(source="a", destination="b", payload=b"p"))
            network.simulator.run()
            arrivals.append(times)
        assert arrivals[0] == arrivals[1]


class TestRoutingFailureCounters:
    def test_unknown_destination_counts_no_route(self):
        network = Network(Simulator(), noise=NoiseSource(1))
        sender = network.create_node("a")
        with pytest.raises(UnknownNodeError):
            sender.send(Packet(source="a", destination="ghost", payload=b""))
        assert network.metrics.counters()["packets_no_route"] == 1

    def test_unreachable_destination_counts_no_route(self):
        network = Network(Simulator(), noise=NoiseSource(1))
        sender = network.create_node("a", segment="lan0")
        network.create_node("b", segment="lan1")
        with pytest.raises(NoRouteError):
            sender.send(Packet(source="a", destination="b", payload=b""))
        counters = network.metrics.counters()
        assert counters["packets_no_route"] == 1
        assert "packets_blocked" not in counters

    def test_firewalled_destination_counts_blocked_and_no_route(self):
        network = Network(Simulator(), noise=NoiseSource(1))
        sender = network.create_node("a")
        network.create_node("b", firewall=Firewall(default_inbound="deny"))
        with pytest.raises(NoRouteError):
            sender.send(Packet(source="a", destination="b", payload=b""))
        counters = network.metrics.counters()
        assert counters["packets_blocked"] == 1
        assert counters["packets_no_route"] == 1
