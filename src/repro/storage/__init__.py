"""Durable storage for the TPS reproduction.

One flavour so far: :class:`~repro.storage.log.LogHistory`, the append-only
history store behind ``history="log"`` on every binding (see
:mod:`repro.core.history` for the store contract and the bounded in-memory
default).  The package is registered in the :mod:`repro.analysis` lint
profile (RL002/RL003/RL004): like the core packages it must not read wall
clocks or ambient randomness -- records carry offsets, never timestamps.
"""

from repro.storage.log import LogHistory

__all__ = ["LogHistory"]
