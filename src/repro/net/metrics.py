"""Metric collection for simulated experiments.

The benchmark harness reproduces the paper's figures by sampling counters and
time series exactly the way the paper describes (per-event invocation times,
per-epoch publisher throughput, per-second subscriber receive counts).  The
classes here are deliberately small and dependency-free so the substrate can
record metrics without caring who reads them.
"""

from __future__ import annotations

import math
import statistics
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Tuple


class Counter:
    """A monotonically increasing named counter."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def increment(self, amount: int = 1) -> None:
        """Add ``amount`` (default 1) to the counter."""
        if amount < 0:
            raise ValueError("counters only increase; use a Gauge-style TimeSeries instead")
        self.value += amount

    def reset(self) -> None:
        """Reset to zero (used between benchmark epochs)."""
        self.value = 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Counter({self.name}={self.value})"


class Gauge:
    """A named value that can move both ways (unlike a :class:`Counter`).

    Added for the membership layer: "alive members right now" is a level,
    not an accumulation, and resetting a counter to fake decrements would
    wreck the monotonicity the bench harness relies on.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0.0

    def set(self, value: float) -> None:
        """Set the current level."""
        self.value = value

    def increment(self, amount: float = 1.0) -> None:
        """Move the level up by ``amount``."""
        self.value += amount

    def decrement(self, amount: float = 1.0) -> None:
        """Move the level down by ``amount``."""
        self.value -= amount

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Gauge({self.name}={self.value})"


class Timer:
    """Accumulates observed durations and exposes simple statistics."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.samples: List[float] = []

    def observe(self, duration: float) -> None:
        """Record a duration in seconds."""
        if duration < 0:
            raise ValueError(f"negative duration recorded on timer {self.name!r}: {duration}")
        self.samples.append(duration)

    @property
    def count(self) -> int:
        """Number of recorded samples."""
        return len(self.samples)

    @property
    def total(self) -> float:
        """Sum of all samples."""
        return sum(self.samples)

    @property
    def mean(self) -> float:
        """Mean of recorded samples (0.0 when empty)."""
        return statistics.fmean(self.samples) if self.samples else 0.0

    @property
    def stdev(self) -> float:
        """Sample standard deviation (0.0 with fewer than two samples)."""
        return statistics.stdev(self.samples) if len(self.samples) > 1 else 0.0

    def percentile(self, q: float) -> float:
        """Return the ``q``-quantile (0 <= q <= 1) of the samples."""
        if not self.samples:
            return 0.0
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be within [0, 1], got {q}")
        ordered = sorted(self.samples)
        index = min(len(ordered) - 1, max(0, math.ceil(q * len(ordered)) - 1))
        return ordered[index]

    def reset(self) -> None:
        """Discard all samples."""
        self.samples.clear()


@dataclass
class Sample:
    """One timestamped observation in a :class:`TimeSeries`."""

    time: float
    value: float


class TimeSeries:
    """An append-only series of (virtual time, value) samples.

    Provides the bucketing helpers the figure harness needs: events per epoch
    (Figure 19) and events per second (Figure 20).
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._samples: List[Sample] = []

    def record(self, time: float, value: float = 1.0) -> None:
        """Append a sample at the given virtual time.

        Samples are usually recorded in time order, but out-of-order samples
        are accepted (e.g. send completions computed ahead of time); the
        bucketing helpers do not depend on insertion order.
        """
        self._samples.append(Sample(time, value))

    def __len__(self) -> int:
        return len(self._samples)

    def __iter__(self) -> Iterator[Sample]:
        return iter(self._samples)

    @property
    def values(self) -> List[float]:
        """All sample values in insertion order."""
        return [s.value for s in self._samples]

    @property
    def times(self) -> List[float]:
        """All sample timestamps in insertion order."""
        return [s.time for s in self._samples]

    def counts_per_bucket(
        self,
        bucket_width: float,
        *,
        start: float = 0.0,
        end: Optional[float] = None,
    ) -> List[int]:
        """Return the number of samples falling in each ``bucket_width``-wide bucket.

        Buckets start at ``start`` and extend to ``end`` (defaults to the last
        sample's time).  Used for "events received per second" style series.
        """
        if bucket_width <= 0:
            raise ValueError("bucket width must be positive")
        if end is None:
            end = self._samples[-1].time if self._samples else start
        n_buckets = max(1, math.ceil((end - start) / bucket_width))
        counts = [0] * n_buckets
        for sample in self._samples:
            if sample.time < start or sample.time >= start + n_buckets * bucket_width:
                continue
            index = int((sample.time - start) / bucket_width)
            counts[index] += 1
        return counts

    def rate_per_bucket(
        self,
        bucket_width: float,
        *,
        start: float = 0.0,
        end: Optional[float] = None,
    ) -> List[float]:
        """Like :meth:`counts_per_bucket` but normalised to events/second."""
        return [c / bucket_width for c in self.counts_per_bucket(bucket_width, start=start, end=end)]

    def reset(self) -> None:
        """Discard all samples."""
        self._samples.clear()


class MetricsRegistry:
    """A flat namespace of counters, timers and time series.

    Every simulated node owns a registry; the benchmark harness aggregates the
    registries of the peers participating in an experiment.
    """

    def __init__(self, name: str = "metrics") -> None:
        self.name = name
        self._counters: Dict[str, Counter] = {}
        self._timers: Dict[str, Timer] = {}
        self._series: Dict[str, TimeSeries] = {}
        self._gauges: Dict[str, Gauge] = {}

    def counter(self, name: str) -> Counter:
        """Fetch (creating if needed) the counter with the given name."""
        if name not in self._counters:
            self._counters[name] = Counter(name)
        return self._counters[name]

    def gauge(self, name: str) -> Gauge:
        """Fetch (creating if needed) the gauge with the given name."""
        if name not in self._gauges:
            self._gauges[name] = Gauge(name)
        return self._gauges[name]

    def timer(self, name: str) -> Timer:
        """Fetch (creating if needed) the timer with the given name."""
        if name not in self._timers:
            self._timers[name] = Timer(name)
        return self._timers[name]

    def series(self, name: str) -> TimeSeries:
        """Fetch (creating if needed) the time series with the given name."""
        if name not in self._series:
            self._series[name] = TimeSeries(name)
        return self._series[name]

    def counters(self) -> Dict[str, int]:
        """Snapshot of all counter values."""
        return {name: c.value for name, c in sorted(self._counters.items())}

    def timers(self) -> Dict[str, Timer]:
        """All timers, keyed by name."""
        return dict(self._timers)

    def all_series(self) -> Dict[str, TimeSeries]:
        """All time series, keyed by name."""
        return dict(self._series)

    def reset(self) -> None:
        """Reset every metric in the registry."""
        for counter in self._counters.values():
            counter.reset()
        for timer in self._timers.values():
            timer.reset()
        for series in self._series.values():
            series.reset()


def summarize(samples: Iterable[float]) -> Tuple[float, float, float, float]:
    """Return (mean, stdev, min, max) of an iterable of samples.

    Empty input yields all zeros.  Used by the reporting layer.
    """
    data = list(samples)
    if not data:
        return (0.0, 0.0, 0.0, 0.0)
    mean = statistics.fmean(data)
    stdev = statistics.stdev(data) if len(data) > 1 else 0.0
    return (mean, stdev, min(data), max(data))


__all__ = [
    "Counter",
    "Gauge",
    "MetricsRegistry",
    "Sample",
    "TimeSeries",
    "Timer",
    "summarize",
]
