"""The ``"SHARDED"`` binding: an N-shard in-process bus.

The ROADMAP's sharding direction, taken through the public binding registry
(no special case anywhere in :mod:`repro.core.engine`): a
:class:`ShardedLocalBus` partitions delivery across N independent
:class:`~repro.core.local_engine.LocalBus` shards.

Partition contract (the ``partition`` constructor argument and binding
parameter):

* ``"root"`` (the default) -- *inter*-hierarchy sharding.  Every engine of a
  hierarchy lands on the shard selected by CRC-32 of the hierarchy-root name
  (stable across processes and runs -- Python's randomised ``hash()`` would
  not be), so delivery semantics are identical to a single bus while
  unrelated hierarchies stop sharing routing tables and locks.
* ``"content"`` -- *intra*-hierarchy sharding by event content.  Requires
  ``content_key``, the name of an event attribute; each published event is
  routed through the shard selected by CRC-32 of
  ``"<root name>:<key value>"``.  Engines attach to **every** shard (the
  partition-aware routing path: whichever shard an event hashes to must know
  the hierarchy's subscribers), each event is still delivered exactly once
  (only its own shard delivers it), and per-key ordering is preserved: a
  given key always hashes to the same shard, and a shard's deliveries run
  serially in publish order -- including under
  :meth:`ShardedLocalBus.publish_all`, where each shard group runs serially
  in job order while distinct shards run in parallel.  An event *missing*
  the declared attribute raises :class:`PSException` from the publish call
  (the API's normal error path) instead of crashing with ``AttributeError``;
  the bus stays fully usable afterwards.
* a callable ``partition(event) -> key`` -- like ``"content"`` but with an
  application-supplied key function; the returned key is stringified and
  CRC-32 hashed.  A raising key function is wrapped in :class:`PSException`
  the same way.

Binding parameters (v2 registry schema): ``new_interface("SHARDED",
shards=16)`` or ``new_interface("SHARDED", shards=8, partition="content",
content_key="symbol")``.  Interfaces created with the *same* parameter set
share one registry-built bus (so they can talk to each other); passing
parameters together with an explicit engine-level ``local_bus`` is rejected
-- the parameters describe a bus, so supply one or the other.

:class:`~repro.core.local_engine.LocalTPSEngine` runs over the sharded bus
unchanged -- the bus is a drop-in facade with the same
``attach``/``detach``/``publish``/``engines_for`` surface -- which is the
point of the exercise: a binding built purely from public pieces.

Locking model: the shard tuple is immutable, so the facade itself needs no
lock -- every call delegates to the owning shard, and each shard is a
:class:`~repro.core.local_engine.LocalBus` that is thread-safe on its own
(per-shard lifecycle lock, lock-free snapshot publish).  Two publishers on
*different* shards therefore share no lock at all; the parallel cross-shard
path (:meth:`ShardedLocalBus.publish_all`, backing ``tps.publish_many``)
leans on exactly that independence, fanning per-shard batches out to a
lazily created executor while keeping each shard's events in job order.
"""

from __future__ import annotations

import itertools
import threading
import weakref
import zlib
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Type, Union

from repro.core.bindings import BindingParam, BindingRequest, register_binding
from repro.core.exceptions import PSException
from repro.core.local_engine import LocalBus, LocalTPSEngine
from repro.core.type_registry import type_name

#: Shard count of the process-wide default sharded bus.
DEFAULT_SHARD_COUNT = 8

#: The partition modes a bus accepts besides a callable key function.
PARTITION_MODES = ("root", "content")

_bus_counter = itertools.count(1)


class ShardedLocalBus:
    """N independent :class:`LocalBus` shards with a pluggable partition.

    Presents the exact ``LocalBus`` surface
    (``attach``/``detach``/``publish``/``engines_for``), delegating each call
    to the owning shard.  See the module docstring for the partition
    contract (``"root"``, ``"content"`` + ``content_key``, or a callable).
    """

    def __init__(
        self,
        shards: int = DEFAULT_SHARD_COUNT,
        *,
        partition: Union[str, Callable[[Any], Any]] = "root",
        content_key: Optional[str] = None,
    ) -> None:
        if shards < 1:
            raise PSException(f"a sharded bus needs at least 1 shard, got {shards}")
        if callable(partition):
            self.partition: Union[str, Callable[[Any], Any]] = partition
        elif partition in PARTITION_MODES:
            self.partition = partition
        else:
            raise PSException(
                f"unknown partition mode {partition!r}; expected one of "
                f"{PARTITION_MODES} or a callable key function"
            )
        if self.partition == "content":
            if not isinstance(content_key, str) or not content_key:
                raise PSException(
                    "partition='content' needs content_key, the name of the "
                    "event attribute to shard by"
                )
        elif content_key is not None:
            raise PSException(
                "content_key only applies to partition='content', "
                f"got content_key={content_key!r} with partition={partition!r}"
            )
        self.content_key = content_key
        #: Process-unique token identifying this bus; composite bindings tag
        #: wire messages with it to filter same-bus echoes.
        self.bus_id = f"shardedbus-{next(_bus_counter)}"
        self.shards: Tuple[LocalBus, ...] = tuple(LocalBus() for _ in range(shards))
        #: Executor of the cross-shard batch path, created on first use (a
        #: bus that never sees :meth:`publish_all` never starts a thread)
        #: and guarded by ``_executor_lock`` so two racing batches cannot
        #: each build one.
        self._executor: Optional[ThreadPoolExecutor] = None
        self._executor_lock = threading.Lock()
        #: Thread-local re-entrancy marker: set while a thread runs a shard
        #: group, so a nested ``publish_all`` (e.g. from a subscriber
        #: callback) runs inline instead of submitting to -- and then
        #: waiting on -- the very pool it is occupying, which would
        #: deadlock once every worker is a waiter.
        self._local = threading.local()

    # ------------------------------------------------------------ partition

    @property
    def intra_hierarchy(self) -> bool:
        """Whether events of one hierarchy can spread across shards."""
        return self.partition != "root"

    def shard_index(self, root_name: str) -> int:
        """The shard owning the hierarchy advertised as ``root_name``.

        Only meaningful under ``"root"`` partitioning; intra-hierarchy
        buses attach every hierarchy to every shard and route per event
        (see :meth:`partition_index`).
        """
        return zlib.crc32(root_name.encode("utf-8")) % len(self.shards)

    def shard_for(self, root_name: str) -> LocalBus:
        """The :class:`LocalBus` shard owning ``root_name``'s hierarchy."""
        return self.shards[self.shard_index(root_name)]

    def partition_key(self, event: Any) -> str:
        """The content key of ``event`` under this bus's partition.

        Raises :class:`PSException` (never ``AttributeError``) when the
        declared ``content_key`` attribute is missing or the callable
        partition function fails -- the publish-side error path.
        """
        if self.partition == "content":
            try:
                value = getattr(event, self.content_key)  # type: ignore[arg-type]
            except AttributeError:
                raise PSException(
                    f"content-keyed sharding: event {type(event).__name__!r} has "
                    f"no attribute {self.content_key!r} (declared as this bus's "
                    "content_key); publish an event carrying the attribute or "
                    "re-partition the bus"
                ) from None
        else:
            try:
                value = self.partition(event)  # type: ignore[operator]
            except PSException:
                raise
            except BaseException as error:
                raise PSException(
                    f"partition key function {self.partition!r} failed on "
                    f"{type(event).__name__!r}: {error}"
                ) from error
        return str(value)

    def partition_index(self, root_name: str, event: Any) -> int:
        """The shard that delivers ``event`` published on ``root_name``.

        Under ``"root"`` partitioning this is the hierarchy's home shard;
        under content/callable partitioning the key is hashed together with
        the root name, so two hierarchies sharing key values still spread
        independently.
        """
        if not self.intra_hierarchy:
            return self.shard_index(root_name)
        key = self.partition_key(event)
        return zlib.crc32(f"{root_name}:{key}".encode("utf-8")) % len(self.shards)

    # ------------------------------------------------- LocalBus facade

    def attach(self, engine: "LocalTPSEngine") -> None:
        """Attach an engine: its home shard, or every shard (intra mode)."""
        if self.intra_hierarchy:
            for shard in self.shards:
                shard.attach(engine)
        else:
            self.shard_for(engine.registry.advertised_name).attach(engine)

    def detach(self, engine: "LocalTPSEngine") -> None:
        """Detach an engine from every shard it was attached to."""
        if self.intra_hierarchy:
            for shard in self.shards:
                shard.detach(engine)
        else:
            self.shard_for(engine.registry.advertised_name).detach(engine)

    def engines_for(self, root: Type[Any]) -> Tuple["LocalTPSEngine", ...]:
        """Every engine attached to the hierarchy rooted at ``root``.

        Intra-hierarchy buses keep identical attachment sets on every shard,
        so the first shard's snapshot is the answer.
        """
        if self.intra_hierarchy:
            return self.shards[0].engines_for(root)
        return self.shard_for(type_name(root)).engines_for(root)

    def publish(self, publisher: "LocalTPSEngine", event: Any) -> int:
        """Deliver through the event's shard (same semantics as LocalBus).

        Under ``"root"`` partitioning the shard is the publisher's home
        shard; under content/callable partitioning it is the event's --
        exactly one shard delivers each event, so delivery stays
        exactly-once and per-key ordering follows from per-shard seriality.
        """
        index = self.partition_index(publisher.registry.advertised_name, event)
        return self.shards[index].publish(publisher, event)

    # ------------------------------------------------- cross-shard batches

    def publish_all(
        self, jobs: Iterable[Tuple["LocalTPSEngine", Any]]
    ) -> List[int]:
        """Publish a batch of ``(publisher, event)`` jobs, shards in parallel.

        Jobs are grouped by the shard that delivers each event (the
        publisher's home shard under ``"root"`` partitioning, the event's
        content shard under intra-hierarchy partitioning); every group runs
        *serially in job order* -- so per-hierarchy (respectively per-key)
        ordering matches a plain publish loop -- while distinct groups run
        concurrently: the calling thread takes one group itself and the rest
        go to the bus executor.  Returns the per-job delivery counts in job
        order.  A single-shard batch runs inline on the calling thread: no
        executor, no handoff, identical cost to looping ``publish``.  A
        *nested* ``publish_all`` (reached from a subscriber callback already
        running on a pool worker) also runs fully inline -- workers never
        wait on the pool they occupy, so re-entrant batches cannot deadlock
        it.
        """
        ordered = list(jobs)
        results: List[int] = [0] * len(ordered)
        groups: Dict[int, List[int]] = {}
        for position, (publisher, event) in enumerate(ordered):
            index = self.partition_index(publisher.registry.advertised_name, event)
            groups.setdefault(index, []).append(position)

        def run_group(index: int, positions: Sequence[int]) -> None:
            previous = getattr(self._local, "in_worker", False)
            self._local.in_worker = True
            try:
                shard = self.shards[index]
                for position in positions:
                    publisher, event = ordered[position]
                    results[position] = shard.publish(publisher, event)
            finally:
                self._local.in_worker = previous

        if len(groups) <= 1 or getattr(self._local, "in_worker", False):
            for index, positions in groups.items():
                run_group(index, positions)
            return results
        # Executor creation and the submits share one critical section so a
        # concurrent shutdown() cannot retire the executor between them (a
        # shutdown arriving after the submits merely waits for the batch).
        grouped = list(groups.items())
        with self._executor_lock:
            executor = self._executor
            if executor is None:
                executor = self._executor = ThreadPoolExecutor(
                    max_workers=len(self.shards),
                    thread_name_prefix="repro-shard",
                )
            futures = [
                executor.submit(run_group, index, positions)
                for index, positions in grouped[1:]
            ]
        # The caller works one group instead of idling in result(); it is
        # also the only thread that ever waits on the pool.
        caller_error: Optional[BaseException] = None
        try:
            run_group(*grouped[0])
        except BaseException as error:  # noqa: BLE001 - re-raised below
            caller_error = error
        # Await every group before raising: a failing shard must not leave
        # the other shards delivering in the background (or their exceptions
        # unretrieved) while the caller already unwound.
        errors: List[BaseException] = []
        for future in futures:
            try:
                future.result()
            except BaseException as error:  # noqa: BLE001 - re-raised below
                errors.append(error)
        if caller_error is not None:
            raise caller_error
        if errors:
            raise errors[0]
        return results

    def shutdown(self) -> None:
        """Stop the batch executor, if one was ever started (idempotent).

        Only the executor is affected: the shards, their engines and the
        plain ``publish`` path keep working, and a later ``publish_all``
        lazily builds a fresh executor.  A batch already submitted when the
        shutdown arrives runs to completion (``wait=True``); the executor
        swap shares the lock with ``publish_all``'s submits, so a batch can
        never be caught between obtaining the executor and submitting to it.
        """
        with self._executor_lock:
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        attached = sum(len(engines) for shard in self.shards for engines in shard._engines.values())
        part = self.partition if isinstance(self.partition, str) else "callable"
        return (
            f"ShardedLocalBus(shards={len(self.shards)}, partition={part!r}, "
            f"engines={attached})"
        )


#: Default process-wide sharded bus, used when the engine supplies no bus
#: and no binding parameters.
DEFAULT_SHARDED_BUS = ShardedLocalBus()

#: Registry-built buses, keyed by the parameter set that described them, so
#: interfaces created with identical parameters share one bus and can talk.
_PARAM_BUSES: Dict[Tuple[Any, ...], ShardedLocalBus] = {}
#: Scoped registry-built buses (composite bindings scope by peer): the scope
#: is held weakly so caching a bus never pins a peer -- and through it a
#: whole simulated network -- in memory.
_SCOPED_BUSES: "weakref.WeakKeyDictionary[Any, Dict[Tuple[Any, ...], ShardedLocalBus]]" = None  # type: ignore[assignment]
_PARAM_BUSES_LOCK = threading.Lock()


def _positive_int(value: Any) -> Optional[str]:
    if isinstance(value, bool) or value < 1:
        return f"must be a positive shard count, got {value!r}"
    return None


def _partition_value(value: Any) -> Optional[str]:
    # Callable partitions are deliberately *not* accepted as binding params:
    # registry-built buses are shared by parameter equality, and two
    # identical-looking lambdas compare unequal -- call sites would silently
    # land on disjoint buses and never hear each other.  A callable partition
    # needs an explicitly constructed ShardedLocalBus passed as the engine's
    # local_bus, which makes the sharing decision the application's.
    if value in PARTITION_MODES:
        return None
    if callable(value):
        return (
            "callable partitions cannot describe a shared registry-built bus "
            "(two equal-looking callables compare unequal); construct "
            "ShardedLocalBus(partition=fn) yourself and pass it as local_bus"
        )
    return f"must be one of {PARTITION_MODES}, got {value!r}"


#: The parameter schema shared by the SHARDED and SHARDED+JXTA bindings.
SHARDED_BINDING_PARAMS = (
    BindingParam(
        "shards", (int,), "number of independent LocalBus shards", _positive_int
    ),
    BindingParam(
        "partition",
        (),  # untyped: the check below explains the callable rejection
        "'root' (per-hierarchy) or 'content' (per event attribute)",
        _partition_value,
    ),
    BindingParam(
        "content_key", (str,), "event attribute to shard by (partition='content')"
    ),
)


def resolve_sharded_params(request: BindingRequest) -> Dict[str, Any]:
    """Normalise a request's sharding parameters into constructor kwargs.

    ``content_key`` alone implies ``partition="content"`` (the common case
    needs one parameter, not two).  Returns kwargs for
    :class:`ShardedLocalBus`; combination errors raise :class:`PSException`.
    """
    kwargs: Dict[str, Any] = {}
    if "shards" in request.params:
        kwargs["shards"] = request.param("shards")
    partition = request.param("partition")
    content_key = request.param("content_key")
    if content_key is not None and partition is None:
        partition = "content"
    if partition is not None:
        kwargs["partition"] = partition
    if content_key is not None:
        kwargs["content_key"] = content_key
    return kwargs


def shared_param_bus(
    request: BindingRequest, *, scope: Any = None
) -> ShardedLocalBus:
    """The bus a parameterised binding request resolves to.

    Identical parameter sets (within one ``scope``; composite bindings scope
    by peer) share one cached bus; no parameters and no scope resolve to the
    process-wide :data:`DEFAULT_SHARDED_BUS` for backwards compatibility.
    """
    global _SCOPED_BUSES
    kwargs = resolve_sharded_params(request)
    if not kwargs and scope is None:
        return DEFAULT_SHARDED_BUS
    key = (
        kwargs.get("shards", DEFAULT_SHARD_COUNT),
        kwargs.get("partition", "root"),
        kwargs.get("content_key"),
    )
    with _PARAM_BUSES_LOCK:
        if scope is None:
            cache = _PARAM_BUSES
        else:
            if _SCOPED_BUSES is None:
                _SCOPED_BUSES = weakref.WeakKeyDictionary()
            cache = _SCOPED_BUSES.setdefault(scope, {})
        bus = cache.get(key)
        if bus is None:
            bus = cache[key] = ShardedLocalBus(**kwargs)
        return bus


def request_bus(request: BindingRequest, *, scope: Any = None) -> ShardedLocalBus:
    """Resolve the bus of a SHARDED(-composite) request: explicit or built."""
    bus = request.local_bus
    if bus is None:
        return shared_param_bus(request, scope=scope)
    if not isinstance(bus, ShardedLocalBus):
        raise PSException(
            "the SHARDED binding needs a ShardedLocalBus (or no bus at all); "
            f"got {type(bus).__name__}: construct the engine with "
            "TPSEngine(EventType, local_bus=ShardedLocalBus(shards=N))"
        )
    if resolve_sharded_params(request):
        raise PSException(
            "sharding parameters describe a registry-built bus; pass either "
            "binding params (shards/partition/content_key) or an explicit "
            "local_bus, not both"
        )
    return bus


def _sharded_binding(request: BindingRequest) -> LocalTPSEngine:
    """The ``"SHARDED"`` binding factory.

    Uses the engine's ``local_bus`` when it already is a
    :class:`ShardedLocalBus`, builds (and caches) a bus from the binding
    parameters when given, falls back to the process-wide default otherwise,
    and rejects a plain ``LocalBus`` (silently unsharding would betray the
    binding's name).
    """
    return LocalTPSEngine(
        request.event_type,
        bus=request_bus(request),
        criteria=request.criteria,
        codec=request.codec,
    )


register_binding(
    "SHARDED",
    _sharded_binding,
    capabilities=("in-process", "sharded"),
    params=SHARDED_BINDING_PARAMS,
    replace=True,
)


__all__ = [
    "DEFAULT_SHARDED_BUS",
    "DEFAULT_SHARD_COUNT",
    "PARTITION_MODES",
    "SHARDED_BINDING_PARAMS",
    "ShardedLocalBus",
    "request_bus",
    "resolve_sharded_params",
    "shared_param_bus",
]
