#!/usr/bin/env python3
"""Regenerate the paper's evaluation: Figures 18, 19, 20 and the Section 4.4 comparison.

Run everything (a couple of minutes of wall-clock time)::

    python examples/reproduce_figures.py

Or a single experiment::

    python examples/reproduce_figures.py --figure 18
    python examples/reproduce_figures.py --figure 19
    python examples/reproduce_figures.py --figure 20
    python examples/reproduce_figures.py --figure code-size

The full per-point series can be dumped as CSV-ish lines with ``--series``.
"""

from __future__ import annotations

import argparse

from repro.bench import (
    measure_code_size,
    run_figure18,
    run_figure19,
    run_figure20,
)
from repro.bench.reporting import (
    format_code_size,
    format_figure18,
    format_figure19,
    format_figure20,
)


def figure18(show_series: bool) -> None:
    result = run_figure18()
    print(format_figure18(result))
    if show_series:
        print("\nevent, " + ", ".join(f"{v} {s} sub" for (v, s) in sorted(result.series)))
        for index in range(result.events):
            row = [str(index + 1)]
            for key in sorted(result.series):
                row.append(f"{result.series[key].per_event_ms[index]:.0f}")
            print(", ".join(row))
    print()


def figure19(show_series: bool) -> None:
    result = run_figure19()
    print(format_figure19(result))
    if show_series:
        print("\nepoch, " + ", ".join(f"{v} {s} sub" for (v, s) in sorted(result.series)))
        for index in range(result.epochs):
            row = [str(index + 1)]
            for key in sorted(result.series):
                row.append(f"{result.series[key].epoch_rates[index]:.2f}")
            print(", ".join(row))
    print()


def figure20(show_series: bool) -> None:
    result = run_figure20()
    print(format_figure20(result))
    if show_series:
        print("\nsecond, " + ", ".join(f"{v} {p} pub" for (v, p) in sorted(result.series)))
        for index in range(int(result.duration)):
            row = [str(index + 1)]
            for key in sorted(result.series):
                row.append(str(result.series[key].per_second[index]))
            print(", ".join(row))
    print()


def code_size() -> None:
    print(format_code_size(measure_code_size()))
    print()


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--figure",
        choices=["18", "19", "20", "code-size", "all"],
        default="all",
        help="which experiment to run (default: all)",
    )
    parser.add_argument(
        "--series", action="store_true", help="also print the full per-point series"
    )
    args = parser.parse_args()

    if args.figure in ("18", "all"):
        figure18(args.series)
    if args.figure in ("19", "all"):
        figure19(args.series)
    if args.figure in ("20", "all"):
        figure20(args.series)
    if args.figure in ("code-size", "all"):
        code_size()


if __name__ == "__main__":
    main()
