"""Property-based tests of the TPS layer's core invariants.

Hypothesis drives three kinds of properties:

* *binding equivalence*: the JXTA binding delivers exactly the multiset of
  events the in-process (LOCAL) binding would deliver for the same publication
  sequence and subscription types;
* *delivery invariants*: no duplicates, order preservation per publisher and
  type-safety of everything a callback ever sees;
* *subtype matching*: delivery to a subscriber of type T happens exactly when
  the published event is an instance of T (Figure 7 semantics).
"""

from __future__ import annotations

from typing import List, Tuple

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.apps.skirental.types import (
    PremiumSkiRental,
    RentalOffer,
    SkiRental,
    SnowboardRental,
)
from repro.core import TPSConfig, TPSEngine
from repro.core.local_engine import LocalBus, LocalTPSEngine
from repro.jxta.platform import JxtaNetworkBuilder

EVENT_TYPES = [RentalOffer, SkiRental, PremiumSkiRental, SnowboardRental]

_prices = st.floats(min_value=0.0, max_value=10_000.0, allow_nan=False)


def _make_event(kind: int, price: float):
    cls = EVENT_TYPES[kind]
    if cls is RentalOffer:
        return RentalOffer("shop", price, 3)
    if cls is SkiRental:
        return SkiRental("shop", price, "Salomon", 3)
    if cls is PremiumSkiRental:
        return PremiumSkiRental("shop", price, "Atomic", 3, extras=("boots",))
    return SnowboardRental("shop", price, "Burton", 3)


_event_specs = st.lists(
    st.tuples(st.integers(min_value=0, max_value=3), _prices), min_size=1, max_size=6
)
_subscriber_types = st.lists(
    st.integers(min_value=0, max_value=3), min_size=1, max_size=3
)


@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(events=_event_specs, subscriber_kinds=_subscriber_types)
def test_property_local_binding_matches_isinstance_semantics(events, subscriber_kinds):
    """LOCAL binding: a subscriber of type T receives exactly the events that are instances of T."""
    bus = LocalBus()
    publisher = LocalTPSEngine(RentalOffer, bus=bus)
    subscribers = []
    for kind in subscriber_kinds:
        engine = LocalTPSEngine(EVENT_TYPES[kind], bus=bus)
        inbox: List[object] = []
        engine.subscribe(inbox.append)
        subscribers.append((EVENT_TYPES[kind], inbox))
    published = [_make_event(kind, price) for kind, price in events]
    for event in published:
        publisher.publish(event)
    for subscribed_type, inbox in subscribers:
        expected = [event for event in published if isinstance(event, subscribed_type)]
        assert [type(e).__name__ for e in inbox] == [type(e).__name__ for e in expected]
        assert [e.price for e in inbox] == [e.price for e in expected]
        # Type safety: every delivered object is an instance of the subscribed type.
        assert all(isinstance(e, subscribed_type) for e in inbox)


@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(
    events=st.lists(
        st.tuples(st.integers(min_value=1, max_value=3), _prices), min_size=1, max_size=4
    ),
    subscriber_kind=st.integers(min_value=1, max_value=3),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_property_jxta_binding_equivalent_to_local(events, subscriber_kind, seed):
    """The JXTA binding delivers exactly what the LOCAL binding would.

    Events are restricted to the SkiRental branch (kinds 1-3) published on a
    SkiRental interface, matching how an application would use one engine per
    hierarchy; the subscriber's interface type varies.
    """
    published = [
        _make_event(kind, price) for kind, price in events if kind in (1, 2)
    ] or [_make_event(1, 10.0)]
    subscribed_type = EVENT_TYPES[subscriber_kind] if subscriber_kind != 3 else SkiRental

    # --- reference: the in-process binding --------------------------------
    bus = LocalBus()
    local_publisher = LocalTPSEngine(SkiRental, bus=bus)
    local_subscriber = LocalTPSEngine(subscribed_type, bus=bus)
    local_inbox: List[object] = []
    local_subscriber.subscribe(local_inbox.append)
    for event in published:
        local_publisher.publish(event)

    # --- system under test: the JXTA binding ------------------------------
    builder = JxtaNetworkBuilder(seed=seed)
    builder.add_rendezvous("rdv-0")
    pub_peer = builder.add_peer("prop-pub")
    sub_peer = builder.add_peer("prop-sub")
    publisher = TPSEngine(
        SkiRental, peer=pub_peer, config=TPSConfig(search_timeout=2.0)
    ).new_interface("JXTA")
    builder.settle(rounds=8)
    subscriber = TPSEngine(
        subscribed_type,
        peer=sub_peer,
        config=TPSConfig(search_timeout=6.0, create_if_missing=False),
    ).new_interface("JXTA")
    jxta_inbox: List[object] = []
    subscriber.subscribe(jxta_inbox.append)
    builder.settle(rounds=12)
    for event in published:
        receipt = publisher.publish(event)
        builder.simulator.run_until(max(builder.simulator.now, receipt.completion_time))
    builder.settle(rounds=10)

    assert [(type(e).__name__, e.price) for e in jxta_inbox] == [
        (type(e).__name__, e.price) for e in local_inbox
    ]


@settings(max_examples=30, deadline=None)
@given(events=_event_specs)
def test_property_no_duplicates_and_history_consistency(events):
    """objects_sent/objects_received agree with what callbacks observed; no duplicates."""
    bus = LocalBus()
    publisher = LocalTPSEngine(RentalOffer, bus=bus)
    subscriber = LocalTPSEngine(RentalOffer, bus=bus)
    inbox: List[object] = []
    subscriber.subscribe(inbox.append)
    published = [_make_event(kind, price) for kind, price in events]
    for event in published:
        publisher.publish(event)
    assert len(publisher.objects_sent()) == len(published)
    assert len(subscriber.objects_received()) == len(published)
    assert subscriber.objects_received() == inbox
    # Each delivered object is distinct (no duplicate delivery of one publish).
    assert len(inbox) == len(published)
