"""Property tests for the sharded bus's partition function.

The partition contract (module docstring of :mod:`repro.core.sharded_engine`)
promises four things this file pins with hypothesis and deterministic
corpora:

* *stability*: a key's shard assignment never changes -- across repeated
  calls, and across independently built buses with the same parameters
  (CRC-32, not Python's randomised ``hash``);
* *coverage*: every shard is reachable (no dead shards that would silently
  halve a deployment's capacity);
* *ordering*: per-key delivery order is preserved under ``publish_many``,
  even though distinct keys' shards run concurrently on the executor;
* *error path*: content-keyed mode with the declared attribute missing (or
  a raising callable partition) surfaces as :class:`PSException` from the
  publish call -- never a raw ``AttributeError`` crash -- and the bus stays
  fully usable afterwards.

PR 7 adds the placement layer's contract on top:

* *ring stability*: consistent-hash assignment is content-defined, across
  calls, buses and processes (CRC-32 again);
* *ring coverage*: every shard owns keys (virtual nodes smooth the ring);
* *bounded movement*: growing N -> N+1 shards moves roughly 1/(N+1) of the
  keys and **never** moves a key between two surviving shards;
* *modn compatibility*: ``placement="modn"`` reproduces the pre-placement
  CRC-32-mod-N assignment bit for bit;
* *live resharding* (``migration`` marker): publishing concurrently with
  ``add_shard``/``remove_shard`` churn loses, duplicates and reorders
  nothing -- the drain-then-switch epoch protocol in executable form.
"""

from __future__ import annotations

import dataclasses
import threading
import zlib
from typing import Any, Dict, List

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.exceptions import PSException
from repro.core.local_engine import LocalTPSEngine
from repro.core.placement import (
    DEFAULT_VIRTUAL_NODES,
    ModNPlacement,
    RingPlacement,
    make_placement,
    moved_keys,
    stable_hash,
)
from repro.core.sharded_engine import ShardedLocalBus


@dataclasses.dataclass
class Tick:
    symbol: str = ""
    price: float = 0.0
    sequence: int = 0


_ROOT = f"{Tick.__module__}.{Tick.__qualname__}"

_keys = st.text(min_size=0, max_size=24)
_shard_counts = st.integers(min_value=1, max_value=16)


class TestStability:
    @settings(max_examples=60, deadline=None)
    @given(key=_keys, shards=_shard_counts)
    def test_assignment_is_stable_across_calls_and_buses(self, key, shards):
        bus = ShardedLocalBus(shards, partition="content", content_key="symbol")
        twin = ShardedLocalBus(shards, partition="content", content_key="symbol")
        event = Tick(symbol=key)
        first = bus.partition_index(_ROOT, event)
        assert 0 <= first < shards
        assert all(bus.partition_index(_ROOT, event) == first for _ in range(5))
        # An independently built bus with the same parameters agrees: the
        # hash is content-defined, not instance- or process-defined.
        assert twin.partition_index(_ROOT, Tick(symbol=key)) == first

    @settings(max_examples=30, deadline=None)
    @given(key=_keys, shards=_shard_counts)
    def test_callable_partition_agrees_with_its_key(self, key, shards):
        bus = ShardedLocalBus(shards, partition=lambda event: event.symbol)
        content = ShardedLocalBus(shards, partition="content", content_key="symbol")
        event = Tick(symbol=key)
        # A callable returning the same key lands on the same shard as the
        # content mode: both hash str(key) against the root name.
        assert bus.partition_index(_ROOT, event) == content.partition_index(
            _ROOT, event
        )


class TestCoverage:
    @pytest.mark.parametrize("shards", [2, 3, 4, 8, 16])
    def test_every_shard_reachable_over_a_key_corpus(self, shards):
        bus = ShardedLocalBus(shards, partition="content", content_key="symbol")
        hit = {
            bus.partition_index(_ROOT, Tick(symbol=f"symbol-{index}"))
            for index in range(64 * shards)
        }
        assert hit == set(range(shards))

    def test_distinct_hierarchies_spread_independently(self):
        # The root name participates in the hash: two hierarchies sharing
        # key values must not be forced onto identical shard sequences.
        bus = ShardedLocalBus(8, partition="content", content_key="symbol")
        keys = [f"symbol-{index}" for index in range(64)]
        a = [bus.partition_index("pkg.RootA", Tick(symbol=key)) for key in keys]
        b = [bus.partition_index("pkg.RootB", Tick(symbol=key)) for key in keys]
        assert a != b


class TestOrdering:
    @settings(
        max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow]
    )
    @given(
        sequence=st.lists(st.integers(min_value=0, max_value=5), min_size=1, max_size=40),
        shards=st.integers(min_value=2, max_value=6),
    )
    def test_per_key_order_preserved_under_publish_many(self, sequence, shards):
        bus = ShardedLocalBus(shards, partition="content", content_key="symbol")
        publisher = LocalTPSEngine(Tick, bus=bus)
        subscriber = LocalTPSEngine(Tick, bus=bus)
        inbox: List[Tick] = []
        subscriber.subscribe(inbox.append)
        events = [
            Tick(symbol=f"symbol-{key}", sequence=position)
            for position, key in enumerate(sequence)
        ]
        try:
            receipts = publisher.publish_many(events)
        finally:
            bus.shutdown()
        # Exactly-once: one delivery per job, every event in the inbox once.
        assert [receipt.wire_receipts[0] for receipt in receipts] == [1] * len(events)
        assert sorted(event.sequence for event in inbox) == list(range(len(events)))
        # Per-key ordering: each key's events arrive in publish order even
        # though distinct keys' shard groups ran concurrently.
        arrived: Dict[str, List[int]] = {}
        for event in inbox:
            arrived.setdefault(event.symbol, []).append(event.sequence)
        for symbol, sequences in arrived.items():
            expected = [
                event.sequence for event in events if event.symbol == symbol
            ]
            assert sequences == expected, symbol


class TestContentKeyErrorPath:
    def test_missing_attribute_raises_psexception_not_attributeerror(self):
        bus = ShardedLocalBus(4, partition="content", content_key="symbol")
        publisher = LocalTPSEngine(Tick, bus=bus)
        subscriber = LocalTPSEngine(Tick, bus=bus)
        inbox: List[Any] = []
        subscriber.subscribe(inbox.append)
        event = Tick(symbol="ok", sequence=1)

        class KeylessTick(Tick):
            def __getattribute__(self, name: str) -> Any:
                if name == "symbol":
                    raise AttributeError(name)
                return super().__getattribute__(name)

        with pytest.raises(PSException) as excinfo:
            bus.partition_key(KeylessTick())
        message = str(excinfo.value)
        assert "symbol" in message and "content" in message
        # The bus remains fully usable: the error path is a report, not a
        # corruption.
        publisher.publish(event)
        assert [e.sequence for e in inbox] == [1]

    def test_publish_surfaces_the_error_from_the_publish_call(self):
        bus = ShardedLocalBus(4, partition="content", content_key="missing_attr")
        publisher = LocalTPSEngine(Tick, bus=bus)
        with pytest.raises(PSException) as excinfo:
            publisher.publish(Tick(symbol="x"))
        assert "missing_attr" in str(excinfo.value)

    def test_raising_callable_partition_wrapped_in_psexception(self):
        def broken(event: Any) -> str:
            raise RuntimeError("partition exploded")

        bus = ShardedLocalBus(4, partition=broken)
        publisher = LocalTPSEngine(Tick, bus=bus)
        with pytest.raises(PSException) as excinfo:
            publisher.publish(Tick(symbol="x"))
        assert "partition exploded" in str(excinfo.value)

    def test_publish_many_fails_closed_on_a_bad_key(self):
        bus = ShardedLocalBus(4, partition="content", content_key="symbol")
        publisher = LocalTPSEngine(Tick, bus=bus)
        subscriber = LocalTPSEngine(Tick, bus=bus)
        inbox: List[Any] = []
        subscriber.subscribe(inbox.append)

        class KeylessTick(Tick):
            def __getattribute__(self, name: str) -> Any:
                if name == "symbol":
                    raise AttributeError(name)
                return super().__getattribute__(name)

        batch: List[Any] = [Tick(symbol="a"), KeylessTick(), Tick(symbol="b")]
        with pytest.raises(PSException):
            bus.publish_all([(publisher, event) for event in batch])
        # Grouping failed before any delivery: nothing was half-published.
        assert inbox == []


class TestConstructorValidation:
    def test_content_mode_requires_content_key(self):
        with pytest.raises(PSException):
            ShardedLocalBus(4, partition="content")

    def test_content_key_requires_content_mode(self):
        with pytest.raises(PSException):
            ShardedLocalBus(4, partition="root", content_key="symbol")

    def test_unknown_partition_mode_rejected(self):
        with pytest.raises(PSException):
            ShardedLocalBus(4, partition="bogus")

    def test_root_mode_keeps_hierarchy_on_one_shard(self):
        bus = ShardedLocalBus(4)
        assert not bus.intra_hierarchy
        home = bus.shard_index(_ROOT)
        for index in range(16):
            assert bus.partition_index(_ROOT, Tick(symbol=f"s{index}")) == home

    def test_placement_alias_conflict_rejected(self):
        with pytest.raises(PSException):
            ShardedLocalBus(4, partition="ring", placement="modn")

    def test_virtual_nodes_require_ring_placement(self):
        with pytest.raises(PSException):
            ShardedLocalBus(4, placement="modn", virtual_nodes=32)

    def test_ill_typed_virtual_nodes_rejected(self):
        for bad in (0, -4, True):
            with pytest.raises(PSException):
                ShardedLocalBus(4, placement="ring", virtual_nodes=bad)


_corpus = [f"{prefix}-{index}" for prefix in ("alpha", "beta", "r:k") for index in range(400)]


class TestRingPlacement:
    @settings(max_examples=60, deadline=None)
    @given(key=_keys, shards=_shard_counts)
    def test_ring_assignment_stable_across_instances(self, key, shards):
        ids = tuple(range(shards))
        one = RingPlacement(ids)
        two = RingPlacement(ids)
        assert one.index_for(key) == two.index_for(key)
        assert one.shard_id_for(key) == ids[one.index_for(key)]
        # And through a bus built with the same parameters.
        bus = ShardedLocalBus(shards, partition="content", content_key="symbol")
        twin = ShardedLocalBus(shards, partition="content", content_key="symbol")
        event = Tick(symbol=key)
        assert bus.partition_index(_ROOT, event) == twin.partition_index(_ROOT, event)

    @pytest.mark.parametrize("shards", [2, 3, 4, 8, 16])
    def test_every_shard_owns_keys(self, shards):
        placement = RingPlacement(tuple(range(shards)))
        hit = {placement.index_for(key) for key in _corpus}
        assert hit == set(range(shards))

    @pytest.mark.parametrize("shards", [2, 4, 8, 12])
    def test_growth_moves_a_bounded_fraction_and_only_to_the_new_shard(self, shards):
        old = RingPlacement(tuple(range(shards)))
        new = old.with_shards(tuple(range(shards + 1)))
        moved = moved_keys(old, new, _corpus)
        # Expect ~1/(N+1); virtual nodes leave variance, so allow slack but
        # stay far below what naive mod-N rehashing would move (~N/(N+1)).
        fraction = len(moved) / len(_corpus)
        assert fraction <= 1.8 / (shards + 1), fraction
        # Every moved key lands on the *new* shard: survivors never trade
        # keys among themselves (the whole point of consistent hashing).
        for key in moved:
            assert new.shard_id_for(key) == shards

    @pytest.mark.parametrize("shards", [3, 8])
    def test_removal_moves_only_the_removed_shards_keys(self, shards):
        old = RingPlacement(tuple(range(shards)))
        removed = shards - 1
        new = old.with_shards(tuple(range(removed)))
        for key in _corpus:
            if old.shard_id_for(key) == removed:
                continue
            assert new.shard_id_for(key) == old.shard_id_for(key)

    def test_modn_matches_legacy_crc32_mod_n(self):
        shards = 8
        placement = ModNPlacement(tuple(range(shards)))
        for key in _corpus:
            expected = zlib.crc32(key.encode("utf-8")) % shards
            assert placement.index_for(key) == expected
        # And the factory + bus spellings agree with the direct class.
        via_factory = make_placement("modn", tuple(range(shards)))
        bus = ShardedLocalBus(shards, partition="modn", content_key=None)
        for key in ("a", "b", "zeta-9"):
            assert via_factory.index_for(key) == placement.index_for(key)
        assert bus.placement_mode == "modn"

    def test_stable_hash_is_crc32(self):
        assert stable_hash("abc") == zlib.crc32(b"abc")

    def test_default_virtual_nodes_exported(self):
        placement = RingPlacement((0, 1))
        assert len(placement._points) == 2 * DEFAULT_VIRTUAL_NODES


@pytest.mark.migration
class TestLiveResharding:
    def test_add_shard_bumps_epoch_and_rebalances(self):
        bus = ShardedLocalBus(2, partition="content", content_key="symbol")
        publisher = LocalTPSEngine(Tick, bus=bus)
        subscriber = LocalTPSEngine(Tick, bus=bus)
        inbox: List[Tick] = []
        subscriber.subscribe(inbox.append)
        before = bus.epoch_number
        new_index = bus.add_shard()
        assert bus.epoch_number == before + 1
        assert len(bus.shards) == 3 and new_index == 2
        # The rebalanced bus still delivers exactly once to every key.
        for index in range(32):
            publisher.publish(Tick(symbol=f"s{index}", sequence=index))
        assert sorted(e.sequence for e in inbox) == list(range(32))
        bus.shutdown()

    def test_remove_shard_validation(self):
        bus = ShardedLocalBus(1)
        with pytest.raises(PSException):
            bus.remove_shard()
        grown = ShardedLocalBus(2)
        with pytest.raises(PSException):
            grown.remove_shard(index=5)

    @pytest.mark.slow
    def test_publish_churn_loses_duplicates_reorders_nothing(self):
        """The migration stress test: publishers race add/remove churn.

        Four publisher threads stream sequenced events over 28 keys while
        the main thread grows the bus 2 -> 6 and shrinks it back to 3.
        Drain-then-switch must make the churn invisible: every event
        delivered exactly once, every key's sequence numbers in order.
        """
        bus = ShardedLocalBus(2, partition="content", content_key="symbol")
        publisher = LocalTPSEngine(Tick, bus=bus)
        subscriber = LocalTPSEngine(Tick, bus=bus)
        inbox: List[Tick] = []
        inbox_lock = threading.Lock()

        def collect(event: Tick) -> None:
            with inbox_lock:
                inbox.append(event)

        subscriber.subscribe(collect)
        keys = [f"key-{index}" for index in range(28)]
        per_thread = 250
        errors: List[BaseException] = []

        def pump(worker: int) -> None:
            try:
                for sequence in range(per_thread):
                    key = keys[(worker * 7 + sequence) % len(keys)]
                    publisher.publish(
                        Tick(symbol=key, sequence=worker * per_thread + sequence)
                    )
            except BaseException as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = [
            threading.Thread(target=pump, args=(worker,), name=f"pub-{worker}")
            for worker in range(4)
        ]
        for thread in threads:
            thread.start()
        for _ in range(4):
            bus.add_shard()
        for _ in range(3):
            bus.remove_shard()
        for thread in threads:
            thread.join()
        bus.shutdown()
        assert not errors
        assert bus.epoch_number == 7
        assert len(bus.shards) == 3
        # Exactly once: nothing lost, nothing duplicated.
        assert sorted(e.sequence for e in inbox) == list(range(4 * per_thread))
        # Per-key order: each publisher's sequences on one key ascend.  The
        # publisher picks keys so that (worker, key) determines a strictly
        # increasing sequence subsequence.
        arrived: Dict[tuple, List[int]] = {}
        for event in inbox:
            worker = event.sequence // per_thread
            arrived.setdefault((worker, event.symbol), []).append(event.sequence)
        for run in arrived.values():
            assert run == sorted(run)

    @pytest.mark.slow
    def test_publish_all_batches_never_straddle_a_migration(self):
        bus = ShardedLocalBus(2, partition="content", content_key="symbol")
        publisher = LocalTPSEngine(Tick, bus=bus)
        subscriber = LocalTPSEngine(Tick, bus=bus)
        inbox: List[Tick] = []
        inbox_lock = threading.Lock()

        def collect(event: Tick) -> None:
            with inbox_lock:
                inbox.append(event)

        subscriber.subscribe(collect)
        batches = 40
        width = 25
        errors: List[BaseException] = []

        def pump() -> None:
            try:
                for batch in range(batches):
                    publisher.publish_many(
                        [
                            Tick(symbol=f"key-{index % 10}", sequence=batch * width + index)
                            for index in range(width)
                        ]
                    )
            except BaseException as error:  # pragma: no cover - failure path
                errors.append(error)

        thread = threading.Thread(target=pump, name="batcher")
        thread.start()
        bus.add_shard()
        bus.add_shard()
        bus.remove_shard()
        thread.join()
        bus.shutdown()
        assert not errors
        assert sorted(e.sequence for e in inbox) == list(range(batches * width))

    def test_root_mode_rehomes_attached_engines(self):
        # Engines attached under "root" partitioning must follow their
        # hierarchy's key when the ring changes ownership.
        bus = ShardedLocalBus(2)
        publisher = LocalTPSEngine(Tick, bus=bus)
        subscriber = LocalTPSEngine(Tick, bus=bus)
        inbox: List[Tick] = []
        subscriber.subscribe(inbox.append)
        for _ in range(4):
            bus.add_shard()
        for _ in range(4):
            bus.remove_shard()
        publisher.publish(Tick(symbol="after", sequence=99))
        assert [e.sequence for e in inbox] == [99]
        bus.shutdown()


class TestExecutorHygiene:
    def test_worker_threads_are_named_after_the_bus(self):
        bus = ShardedLocalBus(3, partition="content", content_key="symbol")
        publisher = LocalTPSEngine(Tick, bus=bus)
        subscriber = LocalTPSEngine(Tick, bus=bus)
        names: List[str] = []
        names_lock = threading.Lock()

        def collect(event: Tick) -> None:
            with names_lock:
                names.append(threading.current_thread().name)

        subscriber.subscribe(collect)
        publisher.publish_many(
            [Tick(symbol=f"key-{index}", sequence=index) for index in range(24)]
        )
        bus.shutdown()
        pool_names = [name for name in names if name.startswith("repro-shard-")]
        # The caller delivers one group inline; every pooled delivery runs on
        # a clearly labelled worker.
        assert pool_names, names

    def test_shutdown_is_safe_under_concurrent_double_call(self):
        bus = ShardedLocalBus(4, partition="content", content_key="symbol")
        publisher = LocalTPSEngine(Tick, bus=bus)
        publisher.publish_many(
            [Tick(symbol=f"key-{index}", sequence=index) for index in range(8)]
        )
        errors: List[BaseException] = []

        def shut() -> None:
            try:
                bus.shutdown()
            except BaseException as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = [threading.Thread(target=shut) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        # And the bus is still usable: the next batch rebuilds the pool.
        publisher.publish_many(
            [Tick(symbol=f"key-{index}", sequence=index) for index in range(8)]
        )
        bus.shutdown()
