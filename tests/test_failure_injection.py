"""Failure-injection tests: partitions, crashes, address changes, firewalls, floods.

The paper's setting (JXTA 1.0 in 2001) is explicitly unreliable; the
reproduction's substrate exposes the corresponding failure hooks, and these
tests check that the layers above degrade the way the paper's system would:
lost peers stop receiving, healed partitions resume delivery, a peer that
comes back under a new address keeps its subscriptions (stable UUIDs), and a
flooded subscriber drops messages instead of falling over.
"""

from __future__ import annotations

import pytest

from repro.apps.skirental.types import SkiRental
from repro.core import TPSConfig, TPSEngine
from repro.jxta.platform import JxtaNetworkBuilder
from repro.net.firewall import Firewall
from repro.net.network import LinkSpec


def _pub_sub(builder, pub_name="f-pub", sub_name="f-sub", **sub_kwargs):
    pub_peer = builder.add_peer(pub_name)
    publisher = TPSEngine(
        SkiRental, peer=pub_peer, config=TPSConfig(search_timeout=2.0)
    ).new_interface("JXTA")
    builder.settle(rounds=8)
    sub_peer = builder.add_peer(sub_name, **sub_kwargs)
    subscriber = TPSEngine(
        SkiRental,
        peer=sub_peer,
        config=TPSConfig(search_timeout=6.0, create_if_missing=False),
    ).new_interface("JXTA")
    inbox = []
    subscriber.subscribe(inbox.append)
    builder.settle(rounds=12)
    return publisher, subscriber, inbox, pub_peer, sub_peer


def _publish(builder, publisher, count=1, price=10.0):
    receipts = []
    for index in range(count):
        receipt = publisher.publish(SkiRental("shop", price + index, "b", 1))
        builder.simulator.run_until(max(builder.simulator.now, receipt.completion_time))
        receipts.append(receipt)
    builder.settle(rounds=8)
    return receipts


class TestPartitions:
    def test_partition_blocks_then_heals(self, builder):
        builder.add_rendezvous("rdv-0")
        publisher, _subscriber, inbox, pub_peer, sub_peer = _pub_sub(builder)
        _publish(builder, publisher)
        assert len(inbox) == 1
        # Partition the publisher from both the subscriber and the rendez-vous
        # relay: nothing can get through any more.
        builder.network.partition(pub_peer.node.address, sub_peer.node.address)
        builder.network.partition(pub_peer.node.address, "rdv-0")
        _publish(builder, publisher, price=20.0)
        assert len(inbox) == 1
        # Healing restores delivery for subsequent events.
        builder.network.heal(pub_peer.node.address, sub_peer.node.address)
        builder.network.heal(pub_peer.node.address, "rdv-0")
        _publish(builder, publisher, price=30.0)
        assert len(inbox) == 2

    def test_offline_subscriber_misses_events(self, builder):
        builder.add_rendezvous("rdv-0")
        publisher, _subscriber, inbox, _pub_peer, sub_peer = _pub_sub(builder)
        sub_peer.node.go_offline()
        _publish(builder, publisher)
        assert inbox == []
        sub_peer.node.go_online()
        _publish(builder, publisher, price=42.0)
        assert len(inbox) == 1
        assert inbox[0].price == 42.0


class TestCrashRecovery:
    def test_subscriber_survives_address_change(self, builder):
        """Stable peer UUIDs (PBP): a peer that moves keeps its pipe bindings."""
        builder.add_rendezvous("rdv-0")
        publisher, _subscriber, inbox, pub_peer, sub_peer = _pub_sub(builder)
        _publish(builder, publisher)
        assert len(inbox) == 1
        sub_peer.restart_at_address("moved-subscriber")
        # The publisher's endpoint learns the new address (refreshed peer
        # advertisement / resolver traffic in real JXTA).
        pub_peer.endpoint.learn_address(sub_peer.peer_id, "moved-subscriber")
        _publish(builder, publisher, price=77.0)
        assert len(inbox) == 2
        assert inbox[-1].price == 77.0

    def test_rendezvous_loss_on_single_lan_is_tolerated(self, builder):
        """On one multicast segment, losing the rendez-vous does not stop delivery."""
        rendezvous = builder.add_rendezvous("rdv-0")
        publisher, _subscriber, inbox, _pub, _sub = _pub_sub(builder)
        rendezvous.node.go_offline()
        _publish(builder, publisher)
        assert len(inbox) == 1


class TestFirewallsAndSegments:
    def test_subscriber_behind_firewall_still_served(self, builder):
        builder.add_rendezvous("rdv-0")
        publisher, _subscriber, inbox, _pub_peer, _sub_peer = _pub_sub(
            builder, sub_name="guarded", firewall=Firewall.corporate_default()
        )
        _publish(builder, publisher)
        assert len(inbox) == 1

    def test_cross_segment_subscriber_via_router(self, builder):
        rendezvous = builder.add_rendezvous("rdv-0")
        pub_peer = builder.add_peer("seg-pub")
        publisher = TPSEngine(
            SkiRental, peer=pub_peer, config=TPSConfig(search_timeout=2.0)
        ).new_interface("JXTA")
        builder.settle(rounds=8)
        sub_peer = builder.add_peer("seg-sub", segment="lan1", connect_rendezvous=False)
        builder.connect_segments("seg-sub", "rdv-0", LinkSpec.lan())
        sub_peer.world_group.rendezvous.connect("rdv-0")
        subscriber = TPSEngine(
            SkiRental,
            peer=sub_peer,
            config=TPSConfig(search_timeout=8.0, create_if_missing=False),
        ).new_interface("JXTA")
        inbox = []
        subscriber.subscribe(inbox.append)
        builder.settle(rounds=16)
        _publish(builder, publisher)
        assert len(inbox) == 1
        assert rendezvous.metrics.counters().get("endpoint_forwarded", 0) >= 1


class TestOverload:
    def test_flooded_subscriber_drops_rather_than_stalls(self, builder):
        builder.add_rendezvous("rdv-0")
        publisher, _subscriber, inbox, _pub_peer, sub_peer = _pub_sub(builder)
        # Publish a burst far beyond the receive queue limit without letting
        # the subscriber drain.
        limit = sub_peer.cost_model.receive_queue_limit
        for _ in range(limit * 2):
            publisher.publish(SkiRental("shop", 10.0, "b", 1))
        builder.settle(rounds=64)
        dropped = sub_peer.metrics.counters().get("wire_messages_dropped", 0)
        assert dropped > 0
        assert 0 < len(inbox) <= limit * 2 - dropped + 1
        # The subscriber keeps working afterwards.
        _publish(builder, publisher, price=99.0)
        assert inbox[-1].price == 99.0
