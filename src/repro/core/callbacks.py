"""Callback and exception-handler interfaces of the TPS API.

The paper's subscription methods take two objects (Section 4.3.3):

* one implementing ``TPSCallBackInterface<Type>`` -- its ``handle`` method is
  invoked for every received event of the subscribed type;
* one implementing ``TPSExceptionHandler<Type>`` -- its ``handle`` method is
  invoked with any exception raised while handling an event.

Python applications may either subclass the abstract classes below or simply
pass plain callables; :func:`as_callback` and :func:`as_exception_handler`
adapt both forms to a uniform interface.
"""

from __future__ import annotations

import abc
from typing import Any, Callable, Generic, List, Optional, TypeVar, Union

EventT = TypeVar("EventT")


class TPSCallBackInterface(abc.ABC, Generic[EventT]):
    """Handles events delivered to a subscription (``handle(SkiRental skiR)``)."""

    @abc.abstractmethod
    def handle(self, event: EventT) -> None:
        """Process one received event.

        Any exception raised here is caught by the TPS layer and routed to the
        subscription's exception handler.
        """


class TPSExceptionHandler(abc.ABC, Generic[EventT]):
    """Handles exceptions raised while dispatching events to a callback."""

    @abc.abstractmethod
    def handle(self, error: BaseException) -> None:
        """Process one exception raised by the paired callback."""


class FunctionCallback(TPSCallBackInterface[EventT]):
    """Adapts a plain callable to :class:`TPSCallBackInterface`.

    ``handle`` passes the callable's return value through.  Synchronous
    dispatch loops ignore it, but it is what lets a *coroutine function*
    subscribe through the ordinary adapter path: the ASYNC binding's
    delivery loop receives the coroutine ``handle`` returned and awaits it
    (:mod:`repro.core.async_engine`), with no async-specific adapter class.
    """

    def __init__(self, function: Callable[[EventT], Any]) -> None:
        if not callable(function):
            raise TypeError(f"callback must be callable, got {function!r}")
        self._function = function

    def handle(self, event: EventT) -> Any:
        return self._function(event)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"FunctionCallback({self._function!r})"


class FunctionExceptionHandler(TPSExceptionHandler[Any]):
    """Adapts a plain callable to :class:`TPSExceptionHandler`.

    Like :class:`FunctionCallback`, ``handle`` passes the return value
    through so coroutine error handlers work over the ASYNC binding.
    """

    def __init__(self, function: Callable[[BaseException], Any]) -> None:
        if not callable(function):
            raise TypeError(f"exception handler must be callable, got {function!r}")
        self._function = function

    def handle(self, error: BaseException) -> Any:
        return self._function(error)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"FunctionExceptionHandler({self._function!r})"


class FilteringCallback(TPSCallBackInterface[EventT]):
    """Post-dispatch filtering: a callback that drops events failing a predicate.

    This is the pre-v2 idiom for per-subscription filtering -- the event is
    fully dispatched (history, try/except frame, this wrapper's ``handle``)
    before the predicate rejects it.  New code should push the predicate down
    with ``tps.subscription(cb).where(pred).start()`` instead, which skips
    rejected events in the dispatch rows themselves; this class remains as
    the explicit, named form of the post-dispatch pattern (the
    ``filtered_fanout`` benchmark baselines the equivalent plain-callable
    idiom).
    """

    def __init__(
        self,
        predicate: Callable[[EventT], bool],
        callback: Callable[[EventT], None],
    ) -> None:
        if not callable(predicate) or not callable(callback):
            raise TypeError(
                f"FilteringCallback needs two callables, got {predicate!r}, {callback!r}"
            )
        self._predicate = predicate
        self._callback = callback

    def handle(self, event: EventT) -> None:
        if self._predicate(event):
            self._callback(event)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"FilteringCallback({self._predicate!r}, {self._callback!r})"


class CollectingCallback(TPSCallBackInterface[EventT]):
    """A callback that simply accumulates events (handy in tests and examples)."""

    def __init__(self) -> None:
        self.events: List[EventT] = []

    def handle(self, event: EventT) -> None:
        self.events.append(event)

    def __len__(self) -> int:
        return len(self.events)


class CollectingExceptionHandler(TPSExceptionHandler[Any]):
    """An exception handler that accumulates errors (handy in tests and examples)."""

    def __init__(self) -> None:
        self.errors: List[BaseException] = []

    def handle(self, error: BaseException) -> None:
        self.errors.append(error)

    def __len__(self) -> int:
        return len(self.errors)


class PrintingExceptionHandler(TPSExceptionHandler[Any]):
    """The paper's ``MyExHandler`` behaviour: print the error and carry on."""

    def handle(self, error: BaseException) -> None:
        print(f"[TPS] callback error: {type(error).__name__}: {error}")


#: What applications may pass as a callback.
CallbackLike = Union[TPSCallBackInterface[Any], Callable[[Any], None]]
#: What applications may pass as an exception handler.
ExceptionHandlerLike = Union[TPSExceptionHandler[Any], Callable[[BaseException], None]]


def as_callback(callback: CallbackLike) -> TPSCallBackInterface[Any]:
    """Adapt a callback-like object to :class:`TPSCallBackInterface`."""
    if isinstance(callback, TPSCallBackInterface):
        return callback
    if callable(callback):
        return FunctionCallback(callback)
    raise TypeError(f"not a usable callback: {callback!r}")


def as_exception_handler(
    handler: Optional[ExceptionHandlerLike],
) -> TPSExceptionHandler[Any]:
    """Adapt a handler-like object (or None, meaning collect silently)."""
    if handler is None:
        return CollectingExceptionHandler()
    if isinstance(handler, TPSExceptionHandler):
        return handler
    if callable(handler):
        return FunctionExceptionHandler(handler)
    raise TypeError(f"not a usable exception handler: {handler!r}")


__all__ = [
    "CallbackLike",
    "CollectingCallback",
    "CollectingExceptionHandler",
    "ExceptionHandlerLike",
    "FilteringCallback",
    "FunctionCallback",
    "FunctionExceptionHandler",
    "PrintingExceptionHandler",
    "TPSCallBackInterface",
    "TPSExceptionHandler",
    "as_callback",
    "as_exception_handler",
]
