"""Network packets exchanged between simulated nodes.

A :class:`Packet` is the unit the simulated network moves around.  The JXTA
substrate serialises its messages to bytes before handing them to the network,
so packets carry opaque payloads plus the addressing metadata the transports
and firewalls need.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

_packet_counter = itertools.count(1)


@dataclass
class Packet:
    """A single datagram travelling through the simulated network.

    Attributes
    ----------
    source:
        Network address (node name) of the sender.
    destination:
        Network address of the receiver, or ``"*"`` for multicast.
    payload:
        Opaque serialised bytes (a JXTA message, usually).
    protocol:
        Name of the logical protocol carried (``"jxta"`` by default); used by
        firewalls to apply protocol-specific rules.
    transport:
        Transport kind used for this hop (``"tcp"``, ``"http"``, ``"multicast"``).
    ttl:
        Remaining relay hops before the packet is dropped.
    relay_path:
        Addresses of relays the packet has traversed, in order.
    packet_id:
        Monotonically increasing identifier, unique per process.
    created_at:
        Virtual time at which the packet was created (set by the sender).
    """

    source: str
    destination: str
    payload: bytes
    protocol: str = "jxta"
    transport: str = "tcp"
    ttl: int = 8
    relay_path: list[str] = field(default_factory=list)
    packet_id: int = field(default_factory=lambda: next(_packet_counter))
    created_at: float = 0.0

    MULTICAST_ADDRESS = "*"

    @property
    def size(self) -> int:
        """Size of the payload in bytes."""
        return len(self.payload)

    @property
    def is_multicast(self) -> bool:
        """True when the packet targets every reachable node."""
        return self.destination == self.MULTICAST_ADDRESS

    def with_relay(self, relay_address: str) -> "Packet":
        """Return a copy of the packet after passing through ``relay_address``.

        The copy has its TTL decremented and the relay appended to
        ``relay_path``.  The original packet is left untouched so that metrics
        can still inspect it.
        """
        return Packet(
            source=self.source,
            destination=self.destination,
            payload=self.payload,
            protocol=self.protocol,
            transport=self.transport,
            ttl=self.ttl - 1,
            relay_path=[*self.relay_path, relay_address],
            packet_id=self.packet_id,
            created_at=self.created_at,
        )

    def retargeted(self, destination: str) -> "Packet":
        """Return a copy of the packet addressed to ``destination``.

        Used when expanding a multicast packet into per-receiver deliveries.
        """
        return Packet(
            source=self.source,
            destination=destination,
            payload=self.payload,
            protocol=self.protocol,
            transport=self.transport,
            ttl=self.ttl,
            relay_path=list(self.relay_path),
            packet_id=self.packet_id,
            created_at=self.created_at,
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Packet(#{self.packet_id} {self.source}->{self.destination} "
            f"{self.size}B via {self.transport})"
        )


__all__ = ["Packet"]
