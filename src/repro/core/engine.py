"""``TPSEngine``: the entry point of the TPS API.

The paper's initialisation phase (Section 4.3.2) is two lines::

    TPSEngine<SkiRental> tpse = new TPSEngine<SkiRental>();
    TPSInterface tpsInt = tpse.newInterface("JXTA", null, new SkiRental(), argv);

The Python rendering keeps the same two steps::

    tpse = TPSEngine(SkiRental, peer=peer)
    tps_int = tpse.new_interface("JXTA")

Differences, and why:

* Generic Java erases type parameters, so the paper must pass a *dummy
  instance* of the type; Python keeps the class object itself, so the
  instance argument is optional (it is still accepted -- and type-checked --
  for fidelity with the paper's listings).
* The JXTA binding needs to know which simulated peer it runs on, hence the
  explicit ``peer`` argument (real JXTA bootstraps a process-global platform
  from a configuration file).
* ``new_interface("LOCAL")`` returns an in-process binding with identical
  semantics, useful for tests and prototypes.
"""

from __future__ import annotations

from typing import Any, Generic, Optional, Sequence, Type, TypeVar

from repro.core.exceptions import PSException
from repro.core.interface import TPSInterface
from repro.core.jxta_engine import JxtaTPSEngine, TPSConfig
from repro.core.local_engine import LocalBus, LocalTPSEngine
from repro.core.type_registry import Criteria, type_name, validate_event_type
from repro.jxta.peer import Peer
from repro.serialization.object_codec import ObjectCodec

EventT = TypeVar("EventT")


class TPSEngine(Generic[EventT]):
    """Factory of :class:`~repro.core.interface.TPSInterface` instances for one type.

    One engine covers one event type (and, through subtype matching, its
    hierarchy).  "If a publisher (or a subscriber) is interested in several
    'unrelated' types [...] several instances of the publish/subscribe engine
    for each type of interest must be created."  (paper, Section 4.2)
    """

    #: Binding names accepted by :meth:`new_interface`.
    JXTA = "JXTA"
    LOCAL = "LOCAL"

    def __init__(
        self,
        event_type: Type[EventT],
        *,
        peer: Optional[Peer] = None,
        codec: Optional[ObjectCodec] = None,
        config: Optional[TPSConfig] = None,
        local_bus: Optional[LocalBus] = None,
    ) -> None:
        validate_event_type(event_type)
        self.event_type = event_type
        self.peer = peer
        self.codec = codec
        self.config = config
        self.local_bus = local_bus
        self.interfaces: list[TPSInterface[EventT]] = []

    def new_interface(
        self,
        name: str = JXTA,
        criteria: Optional[Criteria] = None,
        instance: Optional[EventT] = None,
        argv: Optional[Sequence[str]] = None,
    ) -> TPSInterface[EventT]:
        """Create a TPS interface bound to the named infrastructure.

        Parameters mirror the paper's ``newInterface(String name, Criteria c,
        Type t, String[] arg)``: the binding name (``"JXTA"`` or ``"LOCAL"``),
        optional advertisement/content filtering criteria, an optional
        instance of the event type (checked, then ignored -- Python does not
        need it) and the application's command-line arguments (ignored).
        """
        if instance is not None and not isinstance(instance, self.event_type):
            raise PSException(
                f"the instance passed to new_interface is a "
                f"{type_name(type(instance))}, not a {type_name(self.event_type)}"
            )
        binding = name.upper()
        if binding == self.JXTA:
            if self.peer is None:
                raise PSException(
                    "the JXTA binding needs a peer: construct the engine with "
                    "TPSEngine(EventType, peer=some_peer)"
                )
            interface: TPSInterface[EventT] = JxtaTPSEngine(
                self.event_type,
                self.peer,
                criteria=criteria,
                codec=self.codec,
                config=self.config,
            )
        elif binding == self.LOCAL:
            interface = LocalTPSEngine(
                self.event_type, bus=self.local_bus, criteria=criteria
            )
        else:
            raise PSException(
                f"unknown TPS binding {name!r}; expected {self.JXTA!r} or {self.LOCAL!r}"
            )
        self.interfaces.append(interface)
        return interface

    # Paper-compatible camelCase alias.
    def newInterface(  # noqa: N802 - paper-compatible alias
        self,
        name: str = JXTA,
        criteria: Optional[Criteria] = None,
        instance: Optional[EventT] = None,
        argv: Optional[Sequence[str]] = None,
    ) -> TPSInterface[EventT]:
        """Alias of :meth:`new_interface` matching the paper's listing."""
        return self.new_interface(name, criteria, instance, argv)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"TPSEngine({type_name(self.event_type)}, interfaces={len(self.interfaces)})"


__all__ = ["TPSEngine"]
