"""Tests for JXTA identifiers (repro.jxta.ids)."""

from __future__ import annotations

import uuid

import pytest
from hypothesis import given, settings, strategies as st

from repro.jxta.errors import AdvertisementError
from repro.jxta.ids import (
    CodatID,
    IDFactory,
    JxtaID,
    ModuleID,
    PeerGroupID,
    PeerID,
    PipeID,
    WORLD_GROUP_ID,
    seed_ids,
)

ALL_KINDS = [PeerID, PeerGroupID, PipeID, ModuleID, CodatID]


@pytest.fixture(autouse=True)
def _unseeded_ids():
    """Keep the global ID factory random by default and restore it afterwards."""
    seed_ids(None)
    yield
    seed_ids(None)


class TestUrnFormat:
    @pytest.mark.parametrize("cls", ALL_KINDS)
    def test_urn_round_trip(self, cls):
        identifier = cls()
        urn = identifier.to_urn()
        assert urn.startswith("urn:jxta:uuid-")
        restored = JxtaID.from_urn(urn)
        assert type(restored) is cls
        assert restored == identifier

    def test_kind_specific_parse_rejects_other_kinds(self):
        pipe_urn = PipeID().to_urn()
        with pytest.raises(AdvertisementError):
            PeerID.from_urn(pipe_urn)

    def test_subclass_parse_accepts_own_kind(self):
        urn = PeerID().to_urn()
        assert isinstance(PeerID.from_urn(urn), PeerID)

    @pytest.mark.parametrize(
        "bad",
        [
            "not-a-urn",
            "urn:jxta:uuid-",                      # empty body
            "urn:jxta:uuid-" + "0" * 33,           # wrong length
            "urn:jxta:uuid-" + "0" * 32 + "ZZ",    # unknown kind code
            "urn:jxta:uuid-" + "g" * 32 + "03",    # non-hex uuid
        ],
    )
    def test_malformed_urns_rejected(self, bad):
        with pytest.raises(AdvertisementError):
            JxtaID.from_urn(bad)


class TestEqualityAndHashing:
    def test_same_uuid_different_kind_not_equal(self):
        value = uuid.uuid4()
        assert PeerID(value) != PipeID(value)
        assert hash(PeerID(value)) != hash(PipeID(value))

    def test_equal_ids_hash_equal(self):
        value = uuid.uuid4()
        assert PeerID(value) == PeerID(value)
        assert hash(PeerID(value)) == hash(PeerID(value))
        assert len({PeerID(value), PeerID(value)}) == 1

    def test_ordering_is_total_within_and_across_kinds(self):
        ids = sorted([PipeID(), PeerID(), PeerGroupID(), PeerID()])
        assert len(ids) == 4  # sortable without error

    def test_fresh_ids_are_unique(self):
        assert len({PeerID() for _ in range(100)}) == 100


class TestDeterminism:
    def test_seeded_generation_is_reproducible(self):
        seed_ids(42)
        first = [PeerID() for _ in range(3)]
        seed_ids(42)
        second = [PeerID() for _ in range(3)]
        assert first == second

    def test_factory_with_seed(self):
        a = IDFactory(7).new_uuid()
        b = IDFactory(7).new_uuid()
        assert a == b
        assert IDFactory(8).new_uuid() != a

    def test_world_group_id_is_stable(self):
        assert WORLD_GROUP_ID == PeerGroupID.from_urn(WORLD_GROUP_ID.to_urn())


@settings(max_examples=50, deadline=None)
@given(value=st.uuids(version=4), cls=st.sampled_from(ALL_KINDS))
def test_property_urn_round_trip(value, cls):
    identifier = cls(value)
    assert JxtaID.from_urn(identifier.to_urn()) == identifier
