"""An in-process TPS binding.

The paper's ``TPSEngine.newInterface`` takes a *name* selecting the
underlying infrastructure ("JXTA" in all of the paper's listings).  The
reproduction adds a second binding, ``"LOCAL"``: a purely in-process bus with
the same Figure 7 semantics (type hierarchy matching, duplicate-free
delivery, callback/exception-handler dispatch) but no simulated network.

The local binding is useful on its own (unit-testing application callbacks,
prototyping event types before deploying on the P2P substrate) and doubles as
a semantic reference implementation: property-based tests check that the
JXTA binding delivers exactly what the local binding would.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Type

from repro.core.exceptions import PSException
from repro.core.interface import PublishReceipt, Subscription, TPSInterface
from repro.core.type_registry import Criteria, TypeRegistry, hierarchy_root, type_name
from repro.core.subscriber import TPSSubscriberManager


class LocalBus:
    """A process-local event bus connecting :class:`LocalTPSEngine` instances.

    Engines attach under the *root* of their type hierarchy; publishing walks
    every engine attached to the same hierarchy and delivers to those whose
    interface type the event conforms to.
    """

    def __init__(self) -> None:
        self._engines: Dict[str, List["LocalTPSEngine"]] = {}

    def attach(self, engine: "LocalTPSEngine") -> None:
        """Attach an engine to its hierarchy's topic."""
        self._engines.setdefault(engine.registry.advertised_name, []).append(engine)

    def detach(self, engine: "LocalTPSEngine") -> None:
        """Detach an engine (missing engines are ignored)."""
        engines = self._engines.get(engine.registry.advertised_name, [])
        if engine in engines:
            engines.remove(engine)

    def engines_for(self, root: Type[Any]) -> List["LocalTPSEngine"]:
        """Every engine attached to the hierarchy rooted at ``root``."""
        return list(self._engines.get(type_name(root), []))

    def publish(self, publisher: "LocalTPSEngine", event: Any) -> int:
        """Deliver ``event`` to every conforming engine except the publisher.

        Returns the number of engines the event was delivered to.
        """
        delivered = 0
        for engine in self.engines_for(publisher.registry.root):
            if engine is publisher:
                continue
            if engine._deliver(event):
                delivered += 1
        return delivered


#: Default process-wide bus used when no explicit bus is supplied.
DEFAULT_BUS = LocalBus()


class LocalTPSEngine(TPSInterface):
    """The TPS interface implemented over an in-process :class:`LocalBus`."""

    def __init__(
        self,
        event_type: Type[Any],
        *,
        bus: Optional[LocalBus] = None,
        criteria: Optional[Criteria] = None,
    ) -> None:
        self.registry = TypeRegistry(event_type)
        self.criteria = criteria
        self.bus = bus or DEFAULT_BUS
        self.subscriber_manager = TPSSubscriberManager()
        self._received: List[Any] = []
        self._sent: List[Any] = []
        self.bus.attach(self)

    # ------------------------------------------------------------ publishing

    def publish(self, event: Any) -> PublishReceipt:
        """Publish an event to every conforming local subscriber."""
        self.registry.check_publishable(event)
        # Round-trip through the codec so local and JXTA bindings agree on
        # what is serialisable (and so subscribers get an isolated copy).
        copy = self.registry.decode(self.registry.encode(event))
        delivered = self.bus.publish(self, copy)
        self._sent.append(event)
        return PublishReceipt(
            cpu_time=0.0, completion_time=0.0, pipes=1, wire_receipts=[delivered]
        )

    # ----------------------------------------------------------- subscribing

    def _add_subscription(self, subscription: Subscription) -> None:
        self.subscriber_manager.add(subscription)

    def _remove_subscriptions(
        self, callback: Optional[Any] = None, handler: Optional[Any] = None
    ) -> int:
        return self.subscriber_manager.remove(callback, handler)

    # --------------------------------------------------------------- history

    def objects_received(self) -> List[Any]:
        return list(self._received)

    def objects_sent(self) -> List[Any]:
        return list(self._sent)

    # --------------------------------------------------------------- receive

    def _deliver(self, event: Any) -> bool:
        """Deliver an event coming from the bus; returns whether it was accepted."""
        if self.subscriber_manager.empty:
            return False
        if not self.registry.conforms(event):
            return False
        if self.criteria is not None and not self.criteria.matches_event(event):
            return False
        self._received.append(event)
        self.subscriber_manager.dispatch(event)
        return True

    def close(self) -> None:
        """Detach from the bus and drop every subscription."""
        self.bus.detach(self)
        self.subscriber_manager.remove()


__all__ = ["DEFAULT_BUS", "LocalBus", "LocalTPSEngine"]
