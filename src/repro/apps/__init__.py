"""Test-bed applications.

The paper compares three implementations of the same ski-rental application
(Sections 4 and 5):

* **SR-TPS** -- written against the TPS API (:mod:`repro.apps.skirental.tps_app`);
* **SR-JXTA** -- written directly against JXTA, re-creating the same
  functionality by hand (:mod:`repro.apps.skirental.jxta_app`);
* **JXTA-WIRE** -- the bare wire service, used as a lower-bound reference
  point (:mod:`repro.apps.skirental.wire_app`).

All three variants expose the same minimal publisher/subscriber surface so
the benchmark harness can drive them interchangeably.
"""

from __future__ import annotations

from repro.apps.skirental.types import (
    PremiumSkiRental,
    RentalOffer,
    SkiRental,
    SnowboardRental,
)

__all__ = ["PremiumSkiRental", "RentalOffer", "SkiRental", "SnowboardRental"]
