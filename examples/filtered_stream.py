#!/usr/bin/env python3
"""Filtered subscriptions and streaming consumption over the SHARDED binding.

The v2 TPS API in one sitting:

1. *Binding registry* -- ``new_interface("SHARDED")`` resolves through the
   pluggable registry (``repro.core.bindings``), landing on an N-shard
   in-process bus partitioned by type-hierarchy root.
2. *Fluent subscriptions* -- ``tps.subscription(cb).where(pred).start()``
   registers a filtered callback whose predicate is pushed down into the
   dispatch rows, and returns a cancellable handle.
3. *Streaming consumption* -- ``tps.stream(maxsize=..., policy=...)`` turns
   the interface into a pull-style event source with explicit backpressure.
4. *Lifecycle* -- engines and interfaces are context managers; ``close()``
   is idempotent and uniform across bindings.

Run it with::

    python examples/filtered_stream.py
"""

from __future__ import annotations

from repro.core import ShardedLocalBus, TPSEngine, registered_bindings


class Trade:
    """The event type: one executed trade."""

    def __init__(self, symbol: str, price: float, size: int) -> None:
        self.symbol = symbol
        self.price = price
        self.size = size

    def __str__(self) -> str:
        return f"{self.symbol} {self.size}@{self.price:.2f}"


def main() -> None:
    print(f"registered bindings: {', '.join(registered_bindings())}")

    # One sharded bus shared by both peers' engines; every engine of the
    # Trade hierarchy lands on the same shard, so delivery semantics are
    # exactly those of the LOCAL binding.
    bus = ShardedLocalBus(shards=4)
    with TPSEngine(Trade, local_bus=bus) as feed_engine, TPSEngine(
        Trade, local_bus=bus
    ) as desk_engine:
        feed = feed_engine.new_interface("SHARDED")
        desk = desk_engine.new_interface("SHARDED")
        shard = bus.shard_index("__main__.Trade")
        print(f"Trade hierarchy lives on shard {shard} of {len(bus.shards)}")

        # ---------------------------------------------- fluent subscription
        # A block-trade alert: the predicate travels with the subscription
        # into the dispatch rows, so small trades never reach the callback.
        alerts: list[Trade] = []
        alert_handle = (
            desk.subscription(alerts.append)
            .where(lambda trade: trade.size >= 500)
            .on_error(lambda error: print(f"alert handler error: {error}"))
            .start()
        )

        # ------------------------------------------------ streaming consumer
        # A bounded ticker tape: keep only the 5 freshest trades, count what
        # backpressure had to discard.
        with desk.subscription().where(lambda trade: trade.symbol == "SKI").stream(
            maxsize=5, policy="drop_oldest"
        ) as tape:
            for index in range(8):
                feed.publish(Trade("SKI", 100.0 + index, 100))
            feed.publish(Trade("SNOW", 50.0, 800))   # block trade, wrong symbol
            feed.publish(Trade("SKI", 120.0, 1000))  # block trade, on the tape

            trades = tape.drain()
            print(f"tape drained {len(trades)} trades ({tape.dropped} dropped)")
            for trade in trades:
                print(f"  tape: {trade}")

        print(f"block-trade alerts: {len(alerts)}")
        for trade in alerts:
            print(f"  alert: {trade}")

        # ------------------------------------------------------ cancellation
        alert_handle.cancel()
        feed.publish(Trade("SKI", 130.0, 2000))
        print(f"alerts after cancel: {len(alerts)}")
        print(f"desk received {len(desk.objects_received())} trades in total")

    print(f"engines closed: {feed_engine.closed and desk_engine.closed}")


if __name__ == "__main__":
    main()
