"""JXTA-WIRE: the bare wire service, used as the lower-bound reference point.

"Even if JXTA-WIRE alone is not comparable with SR-TPS and SR-JXTA (since it
does not insure the properties described in Section 4.4), we use it here as a
(lower bound) reference point."  (paper, Section 5)

The wire-only publisher and subscriber therefore provide *none* of the SR
functionality: no advertisement search/minimisation (both sides are handed
the same pre-agreed advertisement out of band), no multi-advertisement
management, no duplicate filtering and no typed payloads -- just raw bytes on
a wire pipe.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.jxta.advertisement import (
    PeerGroupAdvertisement,
    PipeAdvertisement,
    ServiceAdvertisement,
)
from repro.jxta.ids import PeerGroupID, PipeID
from repro.jxta.message import Message
from repro.jxta.peer import Peer
from repro.jxta.pipes import PipeKind
from repro.jxta.wire import SendReceipt, WireService


def shared_wire_advertisement(name: str = "JXTA-WIRE") -> PeerGroupAdvertisement:
    """Build the pre-agreed advertisement both sides of a wire-only run share.

    In a real deployment this corresponds to hard-coding the pipe
    advertisement in both programs (the typical JXTA-WIRE demo); in the
    simulation the benchmark harness creates it once and passes it to every
    participant.
    """
    pipe_advertisement = PipeAdvertisement(
        pipe_id=PipeID(), name=name, pipe_kind=PipeKind.WIRE.value
    )
    advertisement = PeerGroupAdvertisement(group_id=PeerGroupID(), name=f"WIRE${name}")
    advertisement.add_service(
        WireService.WireName,
        ServiceAdvertisement(
            name=WireService.WireName,
            version=WireService.WireVersion,
            uri=WireService.WireUri,
            code=WireService.WireCode,
            security=WireService.WireSecurity,
            keywords=name,
            pipe=pipe_advertisement,
        ),
    )
    return advertisement


class WirePublisher:
    """Publishes raw payloads on a wire pipe (no SR functionality)."""

    def __init__(self, peer: Peer, advertisement: PeerGroupAdvertisement) -> None:
        self.peer = peer
        self.advertisement = advertisement
        self.group = peer.world_group.new_group(advertisement)
        self.wire: WireService = self.group.lookup_service(WireService.WireName)
        pipe_advertisement = advertisement.service(WireService.WireName).get_pipe()
        self.output_pipe = self.wire.create_output_pipe(pipe_advertisement)
        self.messages_sent = 0

    @property
    def ready(self) -> bool:
        """Wire-only publishers are ready as soon as they are constructed."""
        return True

    def publish_bytes(self, payload: bytes) -> SendReceipt:
        """Send one raw payload to every bound subscriber."""
        message = Message()
        message.add("payload", payload)
        receipt = self.output_pipe.send(message)
        self.messages_sent += 1
        return receipt

    def publish_offer(self, offer) -> SendReceipt:
        """Benchmark-compatible entry point: send the offer's string form as bytes."""
        return self.publish_bytes(str(offer).encode("utf-8"))


class WireSubscriber:
    """Receives raw payloads from a wire pipe (no SR functionality)."""

    def __init__(
        self,
        peer: Peer,
        advertisement: PeerGroupAdvertisement,
        *,
        listener: Optional[Callable[[bytes], None]] = None,
    ) -> None:
        self.peer = peer
        self.advertisement = advertisement
        self.group = peer.world_group.new_group(advertisement)
        self.wire: WireService = self.group.lookup_service(WireService.WireName)
        pipe_advertisement = advertisement.service(WireService.WireName).get_pipe()
        self.payloads: List[bytes] = []
        self._listener = listener
        self.input_pipe = self.wire.create_input_pipe(pipe_advertisement, self._on_message)

    @property
    def ready(self) -> bool:
        """Wire-only subscribers are ready as soon as they are constructed."""
        return True

    def _on_message(self, message: Message, source) -> None:
        payload = message.get_bytes("payload")
        self.payloads.append(payload)
        if self._listener is not None:
            self._listener(payload)

    def received_count(self) -> int:
        """Number of payloads received so far (duplicates included -- no filtering)."""
        return len(self.payloads)

    def received_offers(self) -> List[bytes]:
        """The raw payloads received so far."""
        return list(self.payloads)

    def close(self) -> None:
        """Close the input pipe."""
        self.wire.close_input_pipe(self.input_pipe)


__all__ = ["WirePublisher", "WireSubscriber", "shared_wire_advertisement"]
