"""Registry error paths and the parameterised binding factory surface.

Covers the v2 parameter machinery end to end: unknown bindings still list
the live registry, unknown/ill-typed parameter keys name the offending key
and the accepted schema, ``registered_bindings(with_params=True)`` reports
every binding's declared parameter names, and the built-in schemas
(SHARDED bus construction/sharing, JXTA config overrides, LOCAL's empty
schema) behave as documented.
"""

from __future__ import annotations

from typing import Any, List

import pytest

from repro.apps.skirental.types import SkiRental
from repro.core import TPSConfig, TPSEngine
from repro.core.bindings import (
    BindingParam,
    BindingRequest,
    binding_params,
    get_binding,
    register_binding,
    registered_bindings,
    unregister_binding,
)
from repro.core.exceptions import PSException
from repro.core.local_engine import LocalBus, LocalTPSEngine
from repro.core.sharded_engine import DEFAULT_SHARDED_BUS, ShardedLocalBus


class TestUnknownBinding:
    def test_error_lists_live_registry_even_with_params(self):
        engine = TPSEngine(SkiRental, local_bus=LocalBus())
        with pytest.raises(PSException) as excinfo:
            engine.new_interface("CORBA", shards=4)
        message = str(excinfo.value)
        for name in registered_bindings():
            assert repr(name) in message

    def test_composite_binding_is_registered(self):
        assert "SHARDED+JXTA" in registered_bindings()
        assert get_binding("sharded+jxta").name == "SHARDED+JXTA"


class TestParamValidationErrors:
    def test_unknown_key_names_key_and_schema(self):
        engine = TPSEngine(SkiRental)
        with pytest.raises(PSException) as excinfo:
            engine.new_interface("SHARDED", bogus=1)
        message = str(excinfo.value)
        assert "'bogus'" in message
        for declared in ("shards", "partition", "content_key"):
            assert declared in message

    def test_wrong_type_names_key_and_expectation(self):
        engine = TPSEngine(SkiRental)
        with pytest.raises(PSException) as excinfo:
            engine.new_interface("SHARDED", shards="many")
        message = str(excinfo.value)
        assert "'shards'" in message and "int" in message and "'many'" in message

    def test_value_check_failures_name_the_key(self):
        engine = TPSEngine(SkiRental)
        with pytest.raises(PSException) as excinfo:
            engine.new_interface("SHARDED", shards=0)
        assert "'shards'" in str(excinfo.value)
        with pytest.raises(PSException) as excinfo:
            engine.new_interface("SHARDED", partition="bogus-mode")
        assert "'partition'" in str(excinfo.value)

    def test_unknown_param_rejected_and_accepted_set_listed(self):
        engine = TPSEngine(SkiRental, local_bus=LocalBus())
        with pytest.raises(PSException) as excinfo:
            engine.new_interface("LOCAL", anything=1)
        message = str(excinfo.value)
        assert "'anything'" in message and "history" in message

    def test_validation_runs_before_the_factory(self):
        # The JXTA factory requires a peer, but an unknown param must be
        # reported first: validation precedes construction.
        engine = TPSEngine(SkiRental)  # no peer
        with pytest.raises(PSException) as excinfo:
            engine.new_interface("JXTA", bogus_timeout=1.0)
        assert "'bogus_timeout'" in str(excinfo.value)

    def test_bool_rejected_where_int_expected(self):
        engine = TPSEngine(SkiRental)
        with pytest.raises(PSException) as excinfo:
            engine.new_interface("JXTA", duplicate_cache_size=True)
        assert "'duplicate_cache_size'" in str(excinfo.value)


class TestRegistryIntrospection:
    def test_registered_bindings_reports_declared_parameter_names(self):
        report = registered_bindings(with_params=True)
        history_params = ("history", "history_size", "history_path")
        assert report["LOCAL"] == history_params
        assert report["ASYNC"] == (
            "dispatch",
            "group",
            "breaker_threshold",
            "breaker_cooldown",
        ) + history_params
        assert report["SHARDED"] == (
            "shards",
            "partition",
            "content_key",
            "placement",
            "virtual_nodes",
        ) + history_params
        # The composite takes everything SHARDED does, plus membership.
        assert report["SHARDED+JXTA"] == report["SHARDED"] + (
            "membership",
            "heartbeat_interval",
            "suspect_timeout",
            "confirm_timeout",
        )
        assert "search_timeout" in report["JXTA"]
        # Same name set as the plain listing, same sorted order.
        assert list(report) == list(registered_bindings())

    def test_binding_params_exposes_the_schema_objects(self):
        params = binding_params("SHARDED")
        by_name = {param.name: param for param in params}
        assert by_name["shards"].types == (int,)
        assert by_name["content_key"].types == (str,)
        assert by_name["placement"].default == "ring"
        assert by_name["virtual_nodes"].default == 64
        composite = {param.name: param for param in binding_params("SHARDED+JXTA")}
        assert composite["membership"].types == (bool,)
        assert composite["membership"].default is False
        assert composite["heartbeat_interval"].default == 0.5
        # Declared defaults render in the schema description.
        assert "[=64]" in by_name["virtual_nodes"].describe()
        assert all(param.description for param in params)

    def test_placement_params_validated(self):
        engine = TPSEngine(SkiRental)
        with pytest.raises(PSException) as excinfo:
            engine.new_interface("SHARDED", placement="spiral")
        assert "'placement'" in str(excinfo.value)
        with pytest.raises(PSException) as excinfo:
            engine.new_interface("SHARDED", virtual_nodes=0)
        assert "'virtual_nodes'" in str(excinfo.value)
        with pytest.raises(PSException) as excinfo:
            engine.new_interface("SHARDED", virtual_nodes="lots")
        assert "'virtual_nodes'" in str(excinfo.value)

    def test_jxta_schema_mirrors_tpsconfig_fields(self):
        import dataclasses

        declared = set(get_binding("JXTA").param_names)
        assert declared == {f.name for f in dataclasses.fields(TPSConfig)}


class TestShardedParams:
    def test_same_params_share_one_bus(self):
        a = TPSEngine(SkiRental).new_interface("SHARDED", shards=5)
        b = TPSEngine(SkiRental).new_interface("SHARDED", shards=5)
        assert a.bus is b.bus
        assert len(a.bus.shards) == 5
        inbox: List[Any] = []
        b.subscribe(inbox.append)
        a.publish(SkiRental("shop", 10.0, "brand", 1))
        assert len(inbox) == 1

    def test_different_params_build_different_buses(self):
        a = TPSEngine(SkiRental).new_interface("SHARDED", shards=5)
        b = TPSEngine(SkiRental).new_interface("SHARDED", shards=6)
        assert a.bus is not b.bus

    def test_no_params_keeps_the_process_default_bus(self):
        interface = TPSEngine(SkiRental).new_interface("SHARDED")
        assert interface.bus is DEFAULT_SHARDED_BUS

    def test_content_key_implies_content_partition(self):
        interface = TPSEngine(SkiRental).new_interface(
            "SHARDED", shards=3, content_key="shop"
        )
        assert interface.bus.partition == "content"
        assert interface.bus.content_key == "shop"
        assert interface.bus.intra_hierarchy

    def test_params_with_explicit_bus_rejected(self):
        engine = TPSEngine(SkiRental, local_bus=ShardedLocalBus(shards=2))
        with pytest.raises(PSException) as excinfo:
            engine.new_interface("SHARDED", shards=4)
        assert "local_bus" in str(excinfo.value)

    def test_plain_local_bus_still_rejected(self):
        engine = TPSEngine(SkiRental, local_bus=LocalBus())
        with pytest.raises(PSException):
            engine.new_interface("SHARDED")


class TestJxtaConfigOverrides:
    def test_params_override_config_fields(self, two_peers):
        peer, _, builder = two_peers
        interface = TPSEngine(SkiRental, peer=peer).new_interface(
            "JXTA", search_timeout=1.5, duplicate_filtering=False
        )
        assert interface.config.search_timeout == 1.5
        assert interface.config.duplicate_filtering is False
        # Unspecified fields keep their defaults.
        assert interface.config.create_if_missing is True

    def test_params_layer_on_top_of_an_engine_config(self, two_peers):
        peer, _, builder = two_peers
        base = TPSConfig(search_timeout=9.0, message_padding=128)
        interface = TPSEngine(SkiRental, peer=peer, config=base).new_interface(
            "JXTA", search_timeout=1.0
        )
        assert interface.config.search_timeout == 1.0
        assert interface.config.message_padding == 128
        # The engine's config object itself is untouched.
        assert base.search_timeout == 9.0


class TestCustomBindingParams:
    def test_custom_schema_via_public_api(self):
        seen: List[BindingRequest] = []

        def factory(request: BindingRequest) -> LocalTPSEngine:
            seen.append(request)
            return LocalTPSEngine(request.event_type, bus=LocalBus())

        register_binding(
            "PARAMETRIC",
            factory,
            params=[
                BindingParam("level", (int,), "verbosity"),
                "label",  # bare name: untyped parameter
            ],
        )
        try:
            engine = TPSEngine(SkiRental)
            engine.new_interface("PARAMETRIC", level=3, label=object())
            (request,) = seen
            assert request.param("level") == 3
            assert request.param("missing", "fallback") == "fallback"
            with pytest.raises(PSException) as excinfo:
                engine.new_interface("PARAMETRIC", level="high")
            assert "'level'" in str(excinfo.value)
            with pytest.raises(PSException) as excinfo:
                engine.new_interface("PARAMETRIC", other=1)
            assert "level" in str(excinfo.value) and "label" in str(excinfo.value)
        finally:
            assert unregister_binding("PARAMETRIC")

    def test_duplicate_param_declaration_rejected(self):
        with pytest.raises(PSException):
            register_binding(
                "DUPPARAM", lambda request: None, params=["a", BindingParam("a")]
            )
        assert "DUPPARAM" not in registered_bindings()


class TestReviewRegressions:
    def test_callable_partition_param_rejected_with_guidance(self):
        # Registry-built buses share by parameter equality; two equal-looking
        # lambdas compare unequal, so callables must be rejected at the
        # params layer (construct the bus explicitly instead).
        engine = TPSEngine(SkiRental)
        with pytest.raises(PSException) as excinfo:
            engine.new_interface("SHARDED", partition=lambda event: event.shop)
        message = str(excinfo.value)
        assert "'partition'" in message and "local_bus" in message
        # The explicit-bus route still supports callables.
        bus = ShardedLocalBus(2, partition=lambda event: event.shop)
        interface = TPSEngine(SkiRental, local_bus=bus).new_interface("SHARDED")
        assert interface.bus is bus

    def test_bool_rejected_for_float_config_overrides(self):
        engine = TPSEngine(SkiRental)
        with pytest.raises(PSException) as excinfo:
            engine.new_interface("JXTA", search_timeout=True)
        assert "'search_timeout'" in str(excinfo.value)
