"""The monitoring service.

One of the three best-known JXTA services named by the paper ("the monitoring
service, the cms service and the wire service").  It exposes the local peer's
counters and timers, and can collect the same snapshot from remote peers over
the Peer Resolver Protocol -- which the benchmark harness uses to aggregate
per-peer statistics after an experiment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, TYPE_CHECKING

from repro.jxta.errors import AdvertisementError
from repro.jxta.ids import PeerID
from repro.jxta.resolver import ResolverQuery, ResolverResponse
from repro.serialization.xml_codec import XmlElement, parse_xml, to_xml

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.jxta.peergroup import PeerGroup


@dataclass
class MonitoringReport:
    """A snapshot of one peer's counters (and selected timer means)."""

    peer_id: PeerID
    peer_name: str
    counters: Dict[str, int] = field(default_factory=dict)
    timer_means: Dict[str, float] = field(default_factory=dict)

    def to_xml(self) -> str:
        """Serialise the report for the resolver response body."""
        element = XmlElement("MonitoringReport")
        element.add("PID", self.peer_id.to_urn())
        element.add("Name", self.peer_name)
        counters = element.add("Counters")
        for name, value in sorted(self.counters.items()):
            counters.add("Counter", str(value), name=name)
        timers = element.add("Timers")
        for name, value in sorted(self.timer_means.items()):
            timers.add("Timer", f"{value:.9f}", name=name)
        return to_xml(element, declaration=False)

    @classmethod
    def from_xml(cls, body: str) -> "MonitoringReport":
        """Parse a report serialised by :meth:`to_xml`."""
        element = parse_xml(body)
        counters = {}
        counters_xml = element.find("Counters")
        if counters_xml is not None:
            for child in counters_xml.find_all("Counter"):
                counters[child.attributes.get("name", "")] = int(child.text)
        timers = {}
        timers_xml = element.find("Timers")
        if timers_xml is not None:
            for child in timers_xml.find_all("Timer"):
                timers[child.attributes.get("name", "")] = float(child.text)
        return cls(
            peer_id=PeerID.from_urn(element.child_text("PID")),
            peer_name=element.child_text("Name"),
            counters=counters,
            timer_means=timers,
        )


class MonitoringService:
    """Per-group metric snapshots, local and remote."""

    HANDLER_NAME = "urn:jxta:monitoring"

    def __init__(self, group: "PeerGroup") -> None:
        self.group = group
        self.peer = group.peer
        self.collected: List[MonitoringReport] = []
        group.resolver.register_handler(self.HANDLER_NAME, self)

    def local_report(self) -> MonitoringReport:
        """Snapshot the local peer's counters and timer means."""
        registry = self.peer.metrics
        return MonitoringReport(
            peer_id=self.peer.peer_id,
            peer_name=self.peer.name,
            counters=registry.counters(),
            timer_means={name: timer.mean for name, timer in registry.timers().items()},
        )

    def collect_remote(self, peer: Optional[PeerID] = None) -> str:
        """Ask one peer (or every reachable peer) for its report; returns the query id."""
        query = XmlElement("MonitoringQuery")
        query.add("Requester", self.peer.peer_id.to_urn())
        return self.group.resolver.send_query(
            self.HANDLER_NAME, to_xml(query, declaration=False), dest_peer=peer
        )

    # ----------------------------------------------------- resolver handler

    def process_query(self, query: ResolverQuery) -> Optional[str]:
        """Answer a monitoring query with the local report."""
        return self.local_report().to_xml()

    def process_response(self, response: ResolverResponse) -> None:
        """Record a remote report.

        Malformed bodies -- unparseable XML, bad URNs, non-numeric counters
        -- are counted and dropped, not raised into the resolver dispatch
        loop.
        """
        try:
            report = MonitoringReport.from_xml(response.body)
        except (ValueError, AdvertisementError):
            # ValueError covers XmlParseError and the int()/float() fields.
            self.peer.metrics.counter("monitoring_malformed").increment()
            return
        self.collected.append(report)


__all__ = ["MonitoringReport", "MonitoringService"]
