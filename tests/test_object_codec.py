"""Tests for the binary object codec (repro.serialization.object_codec)."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.serialization.object_codec import (
    ObjectCodec,
    SerializationError,
    UnregisteredTypeError,
)


class Point:
    def __init__(self, x, y):
        self.x = x
        self.y = y

    def __eq__(self, other):
        return isinstance(other, Point) and (self.x, self.y) == (other.x, other.y)


class Segment:
    def __init__(self, start: Point, end: Point):
        self.start = start
        self.end = end


class Stateful:
    """A class with custom __getstate__/__setstate__ hooks."""

    def __init__(self, value):
        self.value = value
        self.cache = "not serialised"

    def __getstate__(self):
        return {"value": self.value}

    def __setstate__(self, state):
        self.value = state["value"]
        self.cache = "restored"


@pytest.fixture
def codec():
    return ObjectCodec()


class TestScalars:
    @pytest.mark.parametrize(
        "value",
        [None, True, False, 0, 1, -17, 10**40, 0.0, 3.25, -1e300, "", "héllo ✓", b"", b"\x00\xff"],
    )
    def test_round_trip(self, codec, value):
        assert codec.decode(codec.encode(value)) == value

    def test_float_nan(self, codec):
        restored = codec.decode(codec.encode(float("nan")))
        assert math.isnan(restored)

    def test_bool_is_not_confused_with_int(self, codec):
        assert codec.decode(codec.encode(True)) is True
        assert codec.decode(codec.encode(1)) == 1
        assert codec.decode(codec.encode(1)) is not True


class TestContainers:
    def test_nested_containers(self, codec):
        value = {"a": [1, 2, {"b": (3.5, None)}], "c": b"bytes"}
        assert codec.decode(codec.encode(value)) == value

    def test_tuple_vs_list_preserved(self, codec):
        assert isinstance(codec.decode(codec.encode((1, 2))), tuple)
        assert isinstance(codec.decode(codec.encode([1, 2])), list)

    def test_dict_key_ordering_is_deterministic(self, codec):
        a = codec.encode({"x": 1, "y": 2})
        b = codec.encode({"y": 2, "x": 1})
        assert a == b

    def test_empty_containers(self, codec):
        for value in ([], (), {}):
            assert codec.decode(codec.encode(value)) == value


class TestObjects:
    def test_registered_class_round_trip(self, codec):
        codec.register(Point)
        point = Point(1, 2.5)
        restored = codec.decode(codec.encode(point))
        assert isinstance(restored, Point)
        assert restored == point

    def test_nested_registered_objects(self, codec):
        codec.register(Point)
        codec.register(Segment)
        segment = Segment(Point(0, 0), Point(3, 4))
        restored = codec.decode(codec.encode(segment))
        assert isinstance(restored, Segment)
        assert restored.end == Point(3, 4)

    def test_unregistered_class_raises_in_strict_mode(self, codec):
        with pytest.raises(UnregisteredTypeError):
            codec.encode(Point(1, 2))

    def test_unregistered_decoding_raises(self, codec):
        codec.register(Point, "pt")
        payload = codec.encode(Point(1, 2))
        fresh = ObjectCodec()
        with pytest.raises(UnregisteredTypeError):
            fresh.decode(payload)

    def test_lenient_mode_degrades_to_dict(self):
        codec = ObjectCodec(strict=False)
        restored = codec.decode(codec.encode(Point(1, 2)))
        assert restored == {"x": 1, "y": 2}  # the type is lost, as for raw JXTA payloads

    def test_register_custom_name(self, codec):
        codec.register(Point, "geometry.Point")
        assert codec.registered_name(Point) == "geometry.Point"
        assert codec.class_for("geometry.Point") is Point

    def test_register_twice_same_class_is_noop(self, codec):
        codec.register(Point)
        codec.register(Point)
        assert codec.is_registered(Point)

    def test_register_conflicting_name_rejected(self, codec):
        codec.register(Point, "thing")
        with pytest.raises(SerializationError):
            codec.register(Segment, "thing")

    def test_getstate_setstate_hooks(self, codec):
        codec.register(Stateful)
        restored = codec.decode(codec.encode(Stateful(42)))
        assert restored.value == 42
        assert restored.cache == "restored"

    def test_encoded_size(self, codec):
        codec.register(Point)
        assert codec.encoded_size(Point(1, 2)) == len(codec.encode(Point(1, 2)))


class TestMalformedInput:
    def test_truncated_payload(self, codec):
        payload = codec.encode("hello world")
        with pytest.raises(SerializationError):
            codec.decode(payload[:-3])

    def test_trailing_bytes(self, codec):
        payload = codec.encode(7) + b"junk"
        with pytest.raises(SerializationError):
            codec.decode(payload)

    def test_unknown_tag(self, codec):
        with pytest.raises(SerializationError):
            codec.decode(b"?whatever")

    def test_empty_input(self, codec):
        with pytest.raises(SerializationError):
            codec.decode(b"")

    def test_declared_length_beyond_buffer(self, codec):
        # A string tag declaring 100 bytes but carrying only 3.
        import struct

        payload = b"S" + struct.pack(">I", 100) + b"abc"
        with pytest.raises(SerializationError):
            codec.decode(payload)


# ----------------------------------------------------------------- property

_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(10**18), max_value=10**18),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=30),
    st.binary(max_size=30),
)
_values = st.recursive(
    _scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=8), children, max_size=4),
    ),
    max_leaves=20,
)


@settings(max_examples=80, deadline=None)
@given(value=_values)
def test_property_codec_round_trip(value):
    """encode/decode is the identity on arbitrary nested plain values."""
    codec = ObjectCodec()
    assert codec.decode(codec.encode(value)) == value


@settings(max_examples=40, deadline=None)
@given(x=st.integers(), y=st.floats(allow_nan=False, allow_infinity=False))
def test_property_registered_object_round_trip(x, y):
    codec = ObjectCodec()
    codec.register(Point)
    restored = codec.decode(codec.encode(Point(x, y)))
    assert isinstance(restored, Point) and restored == Point(x, y)


@settings(max_examples=60, deadline=None)
@given(value=_values)
def test_property_encoding_is_deterministic(value):
    codec = ObjectCodec()
    assert codec.encode(value) == codec.encode(value)
