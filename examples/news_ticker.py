#!/usr/bin/env python3
"""Type-hierarchy matching (the paper's Figure 7), shown on a news ticker.

Event types form a hierarchy::

    NewsEvent
    ├── SportsNews
    │   └── SkiingNews
    └── MarketNews

Three subscribers express interest at different levels of the hierarchy:

* the *archivist* subscribes to ``NewsEvent`` and receives everything;
* the *sports desk* subscribes to ``SportsNews`` and receives sports and
  skiing news, but no market news;
* the *ski club* subscribes to ``SkiingNews`` only.

This is exactly the semantics of Figure 7: subscribing to a type means
receiving instances of that type and of all its subtypes, while type safety
guarantees every callback gets an object of the type it declared.

Run it with::

    python examples/news_ticker.py
"""

from __future__ import annotations

from repro import tps_network
from repro.core import TPSEngine


class NewsEvent:
    """Root type: any news item."""

    def __init__(self, headline: str) -> None:
        self.headline = headline

    def __str__(self) -> str:
        return f"[{type(self).__name__}] {self.headline}"


class SportsNews(NewsEvent):
    """Sports coverage."""

    def __init__(self, headline: str, sport: str) -> None:
        super().__init__(headline)
        self.sport = sport


class SkiingNews(SportsNews):
    """Skiing-specific coverage."""

    def __init__(self, headline: str, resort: str) -> None:
        super().__init__(headline, sport="skiing")
        self.resort = resort


class MarketNews(NewsEvent):
    """Financial coverage."""

    def __init__(self, headline: str, index_move: float) -> None:
        super().__init__(headline)
        self.index_move = index_move


def main() -> None:
    net = tps_network(peers=4, seed=11)
    newsroom, archivist, sports_desk, ski_club = (net.peer(i) for i in range(4))

    # The newsroom publishes at the root of the hierarchy.
    publish_interface = TPSEngine(NewsEvent, peer=newsroom).new_interface("JXTA")

    # Each subscriber picks the level of the hierarchy it cares about.
    archive_interface = TPSEngine(NewsEvent, peer=archivist).new_interface("JXTA")
    sports_interface = TPSEngine(SportsNews, peer=sports_desk).new_interface("JXTA")
    skiing_interface = TPSEngine(SkiingNews, peer=ski_club).new_interface("JXTA")

    received: dict[str, list[str]] = {"archivist": [], "sports desk": [], "ski club": []}
    archive_interface.subscribe(lambda e: received["archivist"].append(str(e)))
    sports_interface.subscribe(lambda e: received["sports desk"].append(str(e)))
    skiing_interface.subscribe(lambda e: received["ski club"].append(str(e)))

    net.settle()

    stories = [
        MarketNews("Markets close higher", index_move=+1.2),
        SportsNews("Local team wins the cup", sport="football"),
        SkiingNews("Fresh powder in the Alps", resort="Verbier"),
        NewsEvent("Town council meets on Tuesday"),
    ]
    for story in stories:
        publish_interface.publish(story)
        net.settle(rounds=4)
    net.settle()

    for desk, items in received.items():
        print(f"--- {desk} ({len(items)} stories) ---")
        for item in items:
            print(f"  {item}")
    print()
    print("archivist gets everything; sports desk skips market news; the ski club")
    print("only sees skiing coverage -- Figure 7's subtype matching at work.")


if __name__ == "__main__":
    main()
