"""The ``"ASYNC"`` binding: an asyncio-native TPS engine.

The PR 5 JXTA binding *guards* against cross-thread misuse: it records its
owner thread and raises when another thread calls in.  This binding replaces
the guard with a design where the misuse has no correct spelling at all --
**the loop is the thread**:

* an :class:`AsyncLocalBus` is owned by the event loop that created it;
  every route-table mutation and every delivery runs on that loop, so the
  bus needs *no locks* -- loop confinement gives the same exclusion the
  sync buses buy with ``threading.Lock``, and the PR 1/PR 4 snapshot
  template carries over unchanged: route rows and handler tuples are
  immutable tuples, rebound atomically, read straight off the attribute by
  the delivery loop;
* :class:`AsyncTPSEngine` is the asyncio front-end of the shared
  :class:`~repro.core.interface.TPSInterfaceCore`: the subscription
  surface, the fluent builder (``.where()`` push-down), predicate/error
  routing, circuit breakers and the idempotent close template are the very
  same objects the sync bindings use -- only publishing and waiting are
  expressed as awaitables (``await tps.publish(...)``,
  ``await tps.publish_many(...)``, ``await tps.close()``,
  ``async with tps:``);
* coroutine subscribers are first-class: subscribe an ``async def`` and the
  delivery loop awaits it (the :class:`~repro.core.callbacks.FunctionCallback`
  adapter passes the coroutine through); plain callables are still accepted
  and dispatched inline, exactly like on the sync bindings.  With
  ``dispatch="serial"`` (default) subscribers are awaited in row order --
  per-subscriber delivery order equals publish order; ``"concurrent"``
  gathers each event's subscriber coroutines so their I/O waits overlap,
  still with a per-event barrier (``await publish`` returns only when every
  subscriber finished, so order across events is preserved either way);
* :class:`AsyncEventStream` keeps the ``maxsize``/``policy="block"|
  "drop_oldest"`` contract of the threaded stream, but *backpressure is an
  awaitable*: a full ``"block"`` stream suspends the publishing coroutine
  on a future until a consumer makes room, instead of blocking a thread.
  ``async for event in stream`` consumes until the stream closes.

Every mutating or delivering operation checks the running loop first and
raises a :class:`PSException` -- never a bare ``RuntimeError`` -- when
called from a foreign thread, a foreign loop, or no loop at all.  History
queries (``objects_received``/``objects_sent``) stay callable from
anywhere, like on every other binding.

Determinism note: this binding runs on real asyncio loops and is therefore
outside the simulated-network replay domain; it imports no entropy sources
(RL004 covers this module -- the one clock read, stream ``get`` timeouts,
uses the owning loop's own ``loop.time()``), and how it composes with the
simulated wire bindings is documented in ``docs/CONCURRENCY.md``.
"""

from __future__ import annotations

import asyncio
import inspect
import threading
import weakref
from typing import Any, Awaitable, Callable, Dict, Iterable, List, Optional, Tuple, Type

from repro.core.bindings import BindingParam, BindingRequest, register_binding
from repro.core.exceptions import PSException
from repro.core.history import (
    DEFAULT_HISTORY_SIZE,
    HISTORY_BINDING_PARAMS,
    make_history_pair,
)
from repro.core.interface import PublishReceipt, Subscription, TPSInterfaceCore
from repro.core.subscriber import TPSSubscriberManager
from repro.core.subscriptions import StreamCore
from repro.core.type_registry import Criteria, TypeRegistry, type_name
from repro.serialization.object_codec import ObjectCodec

#: How the bus drives one event's subscriber coroutines (see module docs).
ASYNC_DISPATCH_MODES = ("serial", "concurrent")


def _task_ident() -> int:
    """Identity of the running task (0 outside a task), for the re-entrant
    backpressure heuristic -- the async analogue of a thread ident."""
    task = asyncio.current_task()
    return id(task) if task is not None else 0


class _Done:
    """An already-completed awaitable: ``await`` returns immediately.

    :meth:`AsyncTPSEngine.close` returns one so both spellings work --
    plain ``tps.close()`` (e.g. from the generic
    :meth:`~repro.core.engine.TPSEngine.close` loop) and the async-aware
    ``await tps.close()``.  Teardown itself ran synchronously before this
    object is returned (see :meth:`TPSInterfaceCore._close_impl
    <repro.core.interface.TPSInterfaceCore._close_impl>`).
    """

    __slots__ = ()

    def __await__(self):
        return iter(())


class AsyncLocalBus:
    """An event-loop-owned bus connecting :class:`AsyncTPSEngine` instances.

    Structurally the asyncio twin of :class:`~repro.core.local_engine.LocalBus`:
    engines attach under their hierarchy root, publishing resolves a
    type-indexed route row -- ``(engine, manager, criteria, record)`` tuples
    -- and dispatches against the subscriber manager's immutable
    ``_handlers`` snapshot.  The difference is the exclusion mechanism:
    where ``LocalBus`` serialises mutations on a per-bus lock, this bus is
    *loop-confined* -- construction captures the running loop, every
    mutating or delivering call checks it is running on that loop
    (:meth:`check_loop`), and single-threaded loop execution makes the
    mutations atomic with respect to each other with no lock at all.  The
    snapshots still matter: a coroutine suspended mid-delivery (awaiting a
    subscriber) observes the route row and handler tuple it loaded, never a
    half-rebuilt hybrid, even if another task attaches or subscribes during
    the await.
    """

    def __init__(
        self,
        *,
        dispatch: str = "serial",
        loop: Optional[asyncio.AbstractEventLoop] = None,
    ) -> None:
        if dispatch not in ASYNC_DISPATCH_MODES:
            raise PSException(
                f"unknown async dispatch mode {dispatch!r}; "
                f"expected one of {ASYNC_DISPATCH_MODES}"
            )
        if loop is None:
            try:
                loop = asyncio.get_running_loop()
            except RuntimeError:
                raise PSException(
                    "an AsyncLocalBus is owned by the event loop that creates "
                    "it ('the loop is the thread'); construct it inside a "
                    "running loop, e.g. from a coroutine"
                ) from None
        self.dispatch = dispatch
        self._loop = loop
        self._engines: Dict[str, Tuple["AsyncTPSEngine", ...]] = {}
        self._routes: Dict[str, Dict[Type[Any], Tuple[Tuple[Any, ...], ...]]] = {}

    @property
    def loop(self) -> asyncio.AbstractEventLoop:
        """The event loop that owns this bus."""
        return self._loop

    def check_loop(self, operation: str) -> None:
        """Raise :class:`PSException` unless the owning loop is running us.

        The async analogue of the JXTA binding's thread-affinity guard --
        except here the owning "thread" is the loop itself, so the check is
        also what makes cross-thread calls fail *before* any state mutates
        (there is no half-registered subscription to roll back).  Both
        failure shapes -- no running loop (plain call from a foreign thread
        or after the loop closed) and a *different* running loop -- raise
        :class:`PSException`, never a bare ``RuntimeError``.
        """
        try:
            running = asyncio.get_running_loop()
        except RuntimeError:
            raise PSException(
                f"{operation} called with no running event loop: ASYNC "
                "interfaces are owned by their event loop ('the loop is the "
                "thread'); call from a coroutine on the owning loop, or "
                "marshal with asyncio.run_coroutine_threadsafe / "
                "loop.call_soon_threadsafe"
            ) from None
        if running is not self._loop:
            raise PSException(
                f"{operation} called on a foreign event loop: this ASYNC "
                f"interface is owned by loop {self._loop!r} but the running "
                f"loop is {running!r} ('the loop is the thread'); marshal "
                "onto the owning loop with asyncio.run_coroutine_threadsafe"
            )

    # ------------------------------------------------------------- topology

    def attach(self, engine: "AsyncTPSEngine") -> None:
        """Attach an engine to its hierarchy's topic (loop-confined)."""
        self.check_loop("attach")
        root = engine.registry.advertised_name
        self._engines[root] = self._engines.get(root, ()) + (engine,)
        self._routes.pop(root, None)

    def detach(self, engine: "AsyncTPSEngine") -> None:
        """Detach an engine (missing engines are ignored; loop-confined)."""
        self.check_loop("detach")
        root = engine.registry.advertised_name
        engines = self._engines.get(root, ())
        if engine in engines:
            self._engines[root] = tuple(e for e in engines if e is not engine)
            self._routes.pop(root, None)

    def engines_for(self, root: Type[Any]) -> Tuple["AsyncTPSEngine", ...]:
        """Every engine attached to the hierarchy rooted at ``root``."""
        return self._engines.get(type_name(root), ())

    def _route(self, root: str, event_class: Type[Any]) -> Tuple[Tuple[Any, ...], ...]:
        """The delivery rows for one (root, concrete event class) pair.

        Same shape and caching discipline as ``LocalBus._route``, minus the
        lock: the double-checked rebuild is unnecessary because only the
        owning loop ever gets here.
        """
        routes = self._routes.get(root)
        if routes is None:
            routes = self._routes[root] = {}
        targets = routes.get(event_class)
        if targets is None:
            targets = routes[event_class] = tuple(
                (engine, engine.subscriber_manager, engine.criteria, engine._received.append)
                for engine in self._engines.get(root, ())
                if issubclass(event_class, engine.registry.event_type)
            )
        return targets

    # ------------------------------------------------------------- delivery

    async def publish(self, publisher: "AsyncTPSEngine", event: Any) -> int:
        """Deliver ``event`` to every conforming engine except the publisher.

        Returns the number of engines delivered to.  The loop body mirrors
        ``LocalBus.publish`` row for row (skip publisher/closed/empty,
        criteria, record, per-row predicate + breaker + error routing); the
        async difference is that a subscriber returning an awaitable -- a
        coroutine callback, or a ``"block"``-policy stream applying
        backpressure -- suspends *this coroutine* rather than blocking a
        thread.  ``dispatch="serial"`` awaits rows in order;
        ``"concurrent"`` collects each row's guarded dispatch and gathers
        them once, so subscriber waits overlap within the event.
        """
        self.check_loop("publish")
        targets = self._route(publisher.registry.advertised_name, type(event))
        concurrent: Optional[List[Awaitable[None]]] = (
            [] if self.dispatch == "concurrent" else None
        )
        delivered = 0
        for engine, manager, criteria, record in targets:
            if engine is publisher or engine._tps_closed:
                continue
            handlers = manager._handlers
            if not handlers:
                continue
            if criteria is not None and not criteria.matches_event(event):
                continue
            record(event)
            for row in handlers:
                if concurrent is None:
                    await self._dispatch_row(row, event)
                else:
                    concurrent.append(self._dispatch_row(row, event))
            delivered += 1
        if concurrent:
            await asyncio.gather(*concurrent)
        return delivered

    async def _dispatch_row(self, row: Tuple[Any, ...], event: Any) -> None:
        """Dispatch one handler row, routing errors to its paired handler.

        Identical semantics to the sync buses' inner loop: a rejected
        predicate skips the row, a breaker in quarantine skips it, a raising
        predicate/callback records the failure and routes to the exception
        handler.  A coroutine callback (or coroutine error handler) is
        awaited; its exceptions surface here exactly like a sync raise.
        """
        handle, handle_error, predicate, breaker = row
        try:
            if predicate is not None and not predicate(event):
                return
            if breaker is not None and not breaker.allow():
                return
            result = handle(event)
            if inspect.isawaitable(result):
                await result
            if breaker is not None:
                breaker.record_success()
        except BaseException as error:  # noqa: BLE001 - routed to the handler
            if breaker is not None:
                breaker.record_failure()
            try:
                routed = handle_error(error)
                if inspect.isawaitable(routed):
                    await routed
            except BaseException:  # noqa: BLE001  # repro-lint: disable=RL005 - a broken error handler must not stop dispatch
                pass

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        attached = sum(len(engines) for engines in self._engines.values())
        return (
            f"AsyncLocalBus(dispatch={self.dispatch!r}, engines={attached}, "
            f"loop={self._loop!r})"
        )


class AsyncEventStream(StreamCore):
    """Pull-style consumption over the ASYNC binding: ``async for``-able.

    The same :class:`~repro.core.subscriptions.StreamCore` contract as the
    threaded :class:`~repro.core.subscriptions.EventStream` -- arrival-order
    buffer, ``maxsize``, ``policy="block"|"drop_oldest"``, :attr:`dropped`
    counter, close-wakes-everyone -- with waiting expressed as futures on
    the owning loop instead of condition variables:

    * ``async for event in stream`` (or ``await stream.get(timeout=...)``)
      suspends the consuming task until an event arrives or the stream
      closes;
    * a full ``"block"`` stream suspends the *publishing coroutine* -- the
      awaitable-backpressure half of the contract -- until a consumer makes
      room; the re-entrant case (the publishing task is the stream's only
      consumer, so nobody can ever make room) raises :class:`PSException`
      into the subscription's error route, mirroring the threaded
      heuristic;
    * :meth:`drain` stays synchronous (the buffer is loop-confined) and
      wakes blocked producers.

    Both ``with stream:`` (from loop context) and ``async with stream:``
    scope the stream.
    """

    def __init__(
        self,
        interface: "AsyncTPSEngine",
        *,
        maxsize: int = 0,
        policy: str = "block",
        predicate: Optional[Callable[[Any], bool]] = None,
        exception_handler: Optional[Any] = None,
        source: Optional[Any] = None,
        from_offset: Optional[int] = None,
    ) -> None:
        # _init_waiters needs the loop, so bind it before StreamCore's
        # __init__ subscribes (after which _on_event may run immediately).
        self._loop = interface.bus.loop
        super().__init__(
            interface,
            maxsize=maxsize,
            policy=policy,
            predicate=predicate,
            exception_handler=exception_handler,
            source=source,
            from_offset=from_offset,
        )

    def _init_waiters(self) -> None:
        from collections import deque

        self._not_empty: "deque[asyncio.Future]" = deque()
        self._not_full: "deque[asyncio.Future]" = deque()
        #: Task idents that have consumed (get/drain); see _on_event.
        self._consumer_tasks: "set[int]" = set()
        #: Serialises cursor-mode pulls (the asyncio twin of EventStream's
        #: ``_pump_mutex``): entries enter the buffer in offset order even
        #: when a pull suspends mid-batch on ``"block"`` backpressure.
        self._pump_mutex = asyncio.Lock()
        #: The construction-time backlog pull runs as a task (StreamCore's
        #: __init__ is synchronous); tracked so _shutdown can cancel it.
        self._prefill: Optional[asyncio.Task] = None

    @staticmethod
    def _wake_one(waiters: Any) -> None:
        while waiters:
            future = waiters.popleft()
            if not future.done():
                future.set_result(None)
                return

    @staticmethod
    def _wake_all(waiters: Any) -> None:
        while waiters:
            future = waiters.popleft()
            if not future.done():
                future.set_result(None)

    # ------------------------------------------------------------- producer

    async def _on_event(self, event: Any) -> None:
        if self._source is not None:
            # Cursor mode: the pushed event is only a wake signal; deliver
            # whatever the history store holds past the cursor instead.
            await self._pump()
            return
        await self._enqueue(event)

    async def _pump(self) -> None:
        async with self._pump_mutex:
            while True:
                if self._closed:
                    return
                entries = self._source.since(self._cursor)
                if not entries:
                    return
                for offset, event, _ in entries:
                    if self._closed:
                        return
                    # Advance before filtering, same rationale as the
                    # threaded EventStream._pump: a raising predicate
                    # consumes its entry instead of wedging the cursor.
                    self._cursor = offset + 1
                    predicate = self._pull_predicate
                    if predicate is not None and not predicate(event):
                        continue
                    await self._enqueue(event)

    def _replay(self) -> None:
        # StreamCore.__init__ is synchronous; pull the backlog as a task on
        # the owning loop (consumers created before it runs simply wait).
        self._prefill = self._loop.create_task(self._pump())

    async def resume(self, offset: int) -> "AsyncEventStream":
        """Reposition a resumable stream's cursor and pull immediately.

        The awaitable twin of :meth:`EventStream.resume
        <repro.core.subscriptions.EventStream.resume>`: buffered events are
        discarded, the cursor moves to ``offset`` and the retained history
        from there is pulled before this coroutine returns.
        """
        self._interface._check_loop("stream resume")
        if self._source is None:
            raise PSException(
                "only streams created with from_offset= are resumable; "
                "use tps.stream(from_offset=...) to make one"
            )
        if self._closed:
            raise PSException("the event stream is closed")
        self._buffer.clear()
        self._wake_all(self._not_full)
        self._cursor = max(0, offset)
        await self._pump()
        return self

    async def _enqueue(self, event: Any) -> None:
        if self._closed:
            return
        if self.maxsize and len(self._buffer) >= self.maxsize:
            if self.policy == "drop_oldest":
                self._buffer.popleft()
                self._dropped += 1
            else:
                while len(self._buffer) >= self.maxsize and not self._closed:
                    if self._consumer_tasks == {_task_ident()}:
                        # The publishing task is this stream's only consumer
                        # so far: suspending it on _not_full could never be
                        # woken.  Same deliberate heuristic -- and the same
                        # trade-offs -- as the threaded EventStream: raise
                        # into the subscription's error route instead of
                        # deadlocking the loop's task.
                        raise PSException(
                            "AsyncEventStream deadlock: the publishing task "
                            "is this stream's only consumer and the buffer "
                            "is full; drain the stream first, consume from "
                            "another task, or choose policy='drop_oldest'"
                        )
                    waiter = self._loop.create_future()
                    self._not_full.append(waiter)
                    await waiter
                if self._closed:
                    return
        self._buffer.append(event)
        self._wake_one(self._not_empty)

    # ------------------------------------------------------------- consumer

    async def get(self, timeout: Optional[float] = None) -> Any:
        """Remove and return the next event, awaiting one if necessary.

        Raises :class:`PSException` when the stream is closed and empty, or
        when ``timeout`` (seconds, on the owning loop's clock) elapses
        without an event.
        """
        self._interface._check_loop("stream get")
        self._consumer_tasks.add(_task_ident())
        deadline = None if timeout is None else self._loop.time() + timeout
        while True:
            if self._buffer:
                event = self._buffer.popleft()
                self._wake_one(self._not_full)
                return event
            if self._closed:
                raise PSException("the event stream is closed and empty")
            waiter = self._loop.create_future()
            self._not_empty.append(waiter)
            if deadline is None:
                await waiter
                continue
            remaining = deadline - self._loop.time()
            try:
                # A timed-out waiter is left cancelled in the deque; the
                # _wake_* helpers skip done futures, so it never eats a
                # wake-up meant for a live consumer.
                await asyncio.wait_for(waiter, max(remaining, 0.0))
            except asyncio.TimeoutError:
                raise PSException(
                    f"no event arrived within {timeout} seconds"
                ) from None

    def drain(self) -> List[Any]:
        """Remove and return everything currently buffered (never suspends)."""
        self._interface._check_loop("stream drain")
        self._consumer_tasks.add(_task_ident())
        events = list(self._buffer)
        self._buffer.clear()
        self._wake_all(self._not_full)
        return events

    def __aiter__(self) -> "AsyncEventStream":
        return self

    async def __anext__(self) -> Any:
        """Yield events until the stream is closed and drained."""
        try:
            return await self.get()
        except PSException:
            raise StopAsyncIteration from None

    # ------------------------------------------------------------ inspection

    @property
    def pending(self) -> int:
        """How many events are buffered right now (loop-confined read)."""
        return len(self._buffer)

    @property
    def dropped(self) -> int:
        """How many events the ``drop_oldest`` policy has discarded."""
        return self._dropped

    # ------------------------------------------------------------- lifecycle

    def _shutdown(self) -> bool:
        if self._closed:
            return False
        self._closed = True
        if self._prefill is not None and not self._prefill.done():
            self._prefill.cancel()
        self._wake_all(self._not_empty)
        self._wake_all(self._not_full)
        return True

    def close(self) -> None:
        """Close the stream (loop-confined; see :meth:`StreamCore.close`)."""
        self._interface._check_loop("stream close")
        super().close()

    async def __aenter__(self) -> "AsyncEventStream":
        return self

    async def __aexit__(self, *exc_info: Any) -> None:
        self.close()


class AsyncTPSEngine(TPSInterfaceCore):
    """The asyncio front-end of the TPS interface (the ``"ASYNC"`` binding).

    Shares the whole subscription surface --
    ``subscribe``/``unsubscribe``/``subscription()`` builder with ``.where``
    push-down/handles/streams/breakers -- with the sync bindings through
    :class:`~repro.core.interface.TPSInterfaceCore`; only publishing,
    streaming and lifecycle are async-flavoured:

    * ``await tps.publish(event)`` / ``await tps.publish_many(events)``
      return :class:`PublishReceipt` objects once every subscriber (and any
      stream backpressure) settled;
    * ``tps.stream(...)`` returns an :class:`AsyncEventStream`;
    * ``await tps.close()`` (or ``async with tps:``) tears down; plain
      ``tps.close()`` works too -- teardown is synchronous on the loop and
      the returned awaitable is already complete;
    * every mutating operation is loop-confined: calls from foreign
      threads/loops raise :class:`PSException` before any state changes
      (see :meth:`AsyncLocalBus.check_loop`); after close they raise the
      uniform post-close :class:`PSException`, never ``RuntimeError``.
    """

    def __init__(
        self,
        event_type: Type[Any],
        *,
        bus: Optional[AsyncLocalBus] = None,
        criteria: Optional[Criteria] = None,
        codec: Optional[ObjectCodec] = None,
        history: str = "ring",
        history_size: int = DEFAULT_HISTORY_SIZE,
        history_path: Optional[str] = None,
        breaker_threshold: int = 0,
        breaker_cooldown: float = 30.0,
    ) -> None:
        # Instance slot shadowing the class attribute, same rationale as
        # LocalTPSEngine: the delivery loop reads it once per row.
        self._tps_closed = False
        self.registry = TypeRegistry(event_type, codec=codec)
        self.criteria = criteria
        if bus is None:
            bus = AsyncLocalBus()
        elif not isinstance(bus, AsyncLocalBus):
            raise PSException(
                "the ASYNC binding needs an AsyncLocalBus (or no bus at "
                f"all); got {type(bus).__name__}"
            )
        self.bus = bus
        # Constructing from a foreign thread/loop must fail before attach.
        self.bus.check_loop("ASYNC interface construction")
        self.subscriber_manager = TPSSubscriberManager()
        self._received, self._sent = make_history_pair(
            history, history_size, history_path, codec=self.registry.codec
        )
        if breaker_threshold > 0:
            # The breaker clock is the owning loop's own clock ('the loop is
            # the thread'): cooldowns expire on loop time, which tests drive
            # deterministically by substituting loop.time.
            self.subscriber_manager.set_breaker_policy(
                breaker_threshold,
                breaker_cooldown,
                clock=self.bus.loop.time,
            )
        self.bus.attach(self)

    def _check_loop(self, operation: str) -> None:
        self.bus.check_loop(operation)

    # ------------------------------------------------------------ publishing

    async def publish(self, event: Any) -> PublishReceipt:
        """Publish to every conforming subscriber on the owning loop.

        Suspends while coroutine subscribers run (and while a full
        ``"block"`` stream applies backpressure); returns once delivery
        settled.
        """
        self._check_open()
        self._check_loop("publish")
        self.registry.check_publishable(event)
        # Codec round-trip for the same reason as the sync bindings: local
        # and wire deliveries agree on serialisability, subscribers get an
        # isolated copy.
        copy = self.registry.decode(self.registry.encode(event))
        delivered = await self.bus.publish(self, copy)
        self._sent.append(event)
        return PublishReceipt(
            cpu_time=0.0, completion_time=0.0, pipes=1, wire_receipts=[delivered]
        )

    async def publish_many(self, events: Iterable[Any]) -> List[PublishReceipt]:
        """Publish a batch in per-source order; one receipt per event.

        Validation and codec round-trips run up front (a bad event fails the
        batch before anything is delivered), then events are awaited through
        the bus sequentially -- per-subscriber order across the batch equals
        batch order, the same guarantee the sync bindings give.
        """
        self._check_open()
        self._check_loop("publish_many")
        batch = list(events)
        copies = []
        for event in batch:
            self.registry.check_publishable(event)
            copies.append(self.registry.decode(self.registry.encode(event)))
        receipts = []
        for copy in copies:
            delivered = await self.bus.publish(self, copy)
            receipts.append(
                PublishReceipt(
                    cpu_time=0.0,
                    completion_time=0.0,
                    pipes=1,
                    wire_receipts=[delivered],
                )
            )
        record_sent = self._sent.append
        for event in batch:
            record_sent(event)
        return receipts

    # ----------------------------------------------------------- subscribing

    # The loop checks live in the three mutation hooks -- the narrowest
    # shared funnel under subscribe()/unsubscribe()/handle.cancel()/stream
    # teardown -- so a foreign-thread call fails before the subscriber
    # manager mutates and leaves nothing half-registered.

    def _add_subscription(self, subscription: Subscription) -> None:
        self._check_loop("subscribe")
        self.subscriber_manager.add(subscription)

    def _remove_subscriptions(
        self, callback: Optional[Any] = None, handler: Optional[Any] = None
    ) -> int:
        self._check_loop("unsubscribe")
        return self.subscriber_manager.remove(callback, handler)

    def _discard_subscription(self, subscription: Subscription) -> int:
        self._check_loop("subscription cancel")
        return self.subscriber_manager.discard(subscription)

    # --------------------------------------------------------------- streams

    def _make_stream(
        self,
        maxsize: int,
        policy: str,
        predicate: Optional[Callable[[Any], bool]] = None,
        exception_handler: Optional[Any] = None,
        from_offset: Optional[int] = None,
    ) -> AsyncEventStream:
        self._check_loop("stream")
        return AsyncEventStream(
            self,
            maxsize=maxsize,
            policy=policy,
            predicate=predicate,
            exception_handler=exception_handler,
            source=self._history_store() if from_offset is not None else None,
            from_offset=from_offset,
        )

    # objects_received / objects_sent come from TPSInterfaceCore, answered
    # by the engine's history stores (loop-confined appends, thread-safe
    # reads -- history queries stay callable from anywhere).

    # ------------------------------------------------------------- lifecycle

    def close(self) -> Awaitable[None]:
        """End this interface's life; idempotent, loop-confined.

        Teardown (detach from the bus, drop subscriptions, close streams,
        waking their waiters) completes synchronously on the owning loop;
        the returned awaitable is already done, so ``await tps.close()`` and
        plain ``tps.close()`` are equivalent.  A second close returns
        immediately without the loop check, so generic teardown loops (e.g.
        ``TPSEngine.close``) stay safe to re-run.
        """
        if not self._tps_closed:
            self._check_loop("close")
            self._close_impl()
        return _Done()

    def _do_close(self) -> None:
        self.bus.detach(self)
        self.subscriber_manager.remove()
        self._received.close()
        self._sent.close()

    async def __aenter__(self) -> "AsyncTPSEngine":
        return self

    async def __aexit__(self, *exc_info: Any) -> None:
        self.close()


# --------------------------------------------------------------------------
# The registry spec: validated params and the per-loop shared-bus cache.


def _dispatch_value(value: Any) -> Optional[str]:
    if value in ASYNC_DISPATCH_MODES:
        return None
    return f"must be one of {ASYNC_DISPATCH_MODES}, got {value!r}"


def _not_bool(value: Any) -> Optional[str]:
    # bool subclasses int; reject it explicitly for the numeric params.
    if isinstance(value, bool):
        return f"must be a number, got {value!r}"
    return None


#: The parameter schema of the ``"ASYNC"`` binding.
ASYNC_BINDING_PARAMS = (
    BindingParam(
        "dispatch",
        (str,),
        "'serial' awaits each subscriber in row order; 'concurrent' gathers "
        "one event's subscriber coroutines so their waits overlap",
        _dispatch_value,
        default="serial",
    ),
    BindingParam(
        "group",
        (str,),
        "shared-bus group name: interfaces with equal params in the same "
        "group on one loop share a registry-built bus",
    ),
    BindingParam(
        "breaker_threshold",
        (int,),
        "consecutive callback failures before a subscription's circuit "
        "breaker opens (0 disables breakers); cooldowns run on the owning "
        "loop's clock",
        _not_bool,
        default=0,
    ),
    BindingParam(
        "breaker_cooldown",
        (int, float),
        "seconds (loop time) an open breaker quarantines its callback "
        "before probation",
        _not_bool,
        default=30.0,
    ),
) + HISTORY_BINDING_PARAMS

#: Registry-built buses, keyed per owning loop (held weakly -- caching a bus
#: never pins a finished loop) and, within a loop, by the canonical
#: (dispatch, group) parameter key.  The lock covers the rare cache
#: mutation: distinct threads each running their own loop may resolve
#: concurrently.
_LOOP_BUSES: "weakref.WeakKeyDictionary[Any, Dict[Tuple[Any, ...], AsyncLocalBus]]" = (
    weakref.WeakKeyDictionary()
)
_LOOP_BUSES_LOCK = threading.Lock()


def resolve_async_params(request: BindingRequest) -> Dict[str, Any]:
    """Normalise an ASYNC request's parameters into canonical kwargs."""
    kwargs: Dict[str, Any] = {}
    if "dispatch" in request.params:
        kwargs["dispatch"] = request.param("dispatch")
    if "group" in request.params:
        kwargs["group"] = request.param("group")
    return kwargs


def shared_loop_bus(request: BindingRequest) -> AsyncLocalBus:
    """The bus an ASYNC request resolves to: one per (loop, dispatch, group).

    Unlike SHARDED there is no process-global default bus -- a bus cannot
    outlive loop ownership -- so even a parameter-less request shares the
    *owning loop's* default bus, and interfaces on different loops never
    share one (they could not talk safely anyway).
    """
    try:
        loop = asyncio.get_running_loop()
    except RuntimeError:
        raise PSException(
            "new_interface('ASYNC') must run inside the event loop that "
            "will own the interface ('the loop is the thread'); call it "
            "from a coroutine running on that loop"
        ) from None
    kwargs = resolve_async_params(request)
    key = (kwargs.get("dispatch", "serial"), kwargs.get("group"))
    with _LOOP_BUSES_LOCK:
        cache = _LOOP_BUSES.setdefault(loop, {})
        bus = cache.get(key)
        if bus is None:
            bus = cache[key] = AsyncLocalBus(dispatch=key[0], loop=loop)
        return bus


def request_async_bus(request: BindingRequest) -> AsyncLocalBus:
    """Resolve the bus of an ASYNC request: explicit or registry-built."""
    bus = request.local_bus
    if bus is None:
        return shared_loop_bus(request)
    if not isinstance(bus, AsyncLocalBus):
        raise PSException(
            "the ASYNC binding needs an AsyncLocalBus (or no bus at all); "
            f"got {type(bus).__name__}: construct the engine with "
            "TPSEngine(EventType, local_bus=AsyncLocalBus()) from inside "
            "the owning loop"
        )
    if resolve_async_params(request):
        raise PSException(
            "ASYNC parameters describe a registry-built shared bus; pass "
            "either binding params (dispatch/group) or an explicit "
            "local_bus, not both"
        )
    return bus


def reset_loop_buses() -> None:
    """Drop the registry-built per-loop bus cache.

    Registered as the ASYNC ``on_unregister`` hook: an
    ``unregister_binding("ASYNC")``/re-register cycle must not resolve new
    interfaces onto buses cached under the previous registration (the same
    stale-spec leak as the sharded param-bus cache; see
    :func:`repro.core.sharded_engine.reset_param_buses`).  Live interfaces
    keep the bus they hold; only the cache is cleared.
    """
    with _LOOP_BUSES_LOCK:
        _LOOP_BUSES.clear()


def _async_binding(request: BindingRequest) -> AsyncTPSEngine:
    """The ``"ASYNC"`` binding factory: an asyncio-native interface."""
    return AsyncTPSEngine(
        request.event_type,
        bus=request_async_bus(request),
        criteria=request.criteria,
        codec=request.codec,
        history=request.param("history", "ring"),
        history_size=request.param("history_size", DEFAULT_HISTORY_SIZE),
        history_path=request.param("history_path", "") or None,
        breaker_threshold=request.param("breaker_threshold", 0),
        breaker_cooldown=request.param("breaker_cooldown", 30.0),
    )


def register_async_binding() -> None:
    """(Re-)register the ``"ASYNC"`` binding with its canonical spec.

    Module import calls this once; tests exercising the
    ``unregister_binding`` cache-reset path call it again to restore the
    built-in registration.
    """
    register_binding(
        "ASYNC",
        _async_binding,
        capabilities=("in-process", "asynchronous", "event-loop"),
        params=ASYNC_BINDING_PARAMS,
        replace=True,
        on_unregister=reset_loop_buses,
    )


register_async_binding()


__all__ = [
    "ASYNC_BINDING_PARAMS",
    "ASYNC_DISPATCH_MODES",
    "AsyncEventStream",
    "AsyncLocalBus",
    "AsyncTPSEngine",
    "register_async_binding",
    "request_async_bus",
    "reset_loop_buses",
    "resolve_async_params",
    "shared_loop_bus",
]
