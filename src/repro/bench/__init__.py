"""Benchmark harness reproducing the paper's evaluation (Section 5).

* :mod:`repro.bench.scenario` -- builds a measurement scenario: a simulated
  LAN, one set of publishers and one set of subscribers, all running the same
  ski-rental application in one of the three variants (JXTA-WIRE, SR-JXTA,
  SR-TPS).
* :mod:`repro.bench.figures` -- the per-figure experiment runners:
  Figure 18 (invocation time), Figure 19 (publisher throughput) and
  Figure 20 (subscriber throughput).
* :mod:`repro.bench.code_size` -- the Section 4.4 programming-effort
  comparison (lines of application code, TPS vs direct JXTA).
* :mod:`repro.bench.micro` -- micro-benchmark helpers for the real
  (wall-clock) cost of the TPS layer's Python work.
* :mod:`repro.bench.perf` -- the persistent hot-path perf harness
  (``python -m repro bench --json BENCH_N.json``): baseline-vs-fast
  comparisons of the codec, XML and local-bus fan-out hot paths plus the
  wall-clock cost of the Figure 19/20 scenarios, recorded as a
  ``repro-bench/v1`` JSON trajectory file per perf-touching PR.
* :mod:`repro.bench.reporting` -- plain-text tables for all of the above.
"""

from __future__ import annotations

from repro.bench.code_size import CodeSizeReport, measure_code_size
from repro.bench.perf import format_suite, run_perf_suite, validate_document, write_suite
from repro.bench.figures import (
    Figure18Result,
    Figure19Result,
    Figure20Result,
    run_figure18,
    run_figure19,
    run_figure20,
    run_invocation_time,
    run_publisher_throughput,
    run_subscriber_throughput,
)
from repro.bench.scenario import (
    JXTA_WIRE,
    SR_JXTA,
    SR_TPS,
    VARIANTS,
    Scenario,
    ScenarioConfig,
    build_scenario,
)

__all__ = [
    "CodeSizeReport",
    "Figure18Result",
    "Figure19Result",
    "Figure20Result",
    "JXTA_WIRE",
    "SR_JXTA",
    "SR_TPS",
    "Scenario",
    "ScenarioConfig",
    "VARIANTS",
    "build_scenario",
    "format_suite",
    "measure_code_size",
    "run_figure18",
    "run_figure19",
    "run_figure20",
    "run_invocation_time",
    "run_perf_suite",
    "run_publisher_throughput",
    "run_subscriber_throughput",
    "validate_document",
    "write_suite",
]
