"""The TPS binding registry: how infrastructures plug into ``newInterface``.

The paper's ``TPSEngine.newInterface(String name, ...)`` selects the
underlying infrastructure by *name* ("JXTA" in every listing of the paper).
The layering argument of Section 4 -- TPS is a thin typed layer that can sit
on top of any substrate offering propagation and discovery -- applies to the
reproduction's own code too: a new substrate should plug in by registering a
binding, not by editing ``TPSEngine``.

This module is that plug point:

* :class:`TPSBinding` -- the structural protocol a binding's interfaces must
  satisfy (the seven Figure 8 operations plus the v2 ``close`` lifecycle);
* :class:`BindingRequest` -- everything ``new_interface`` knows when it asks
  a binding for an interface (event type, criteria, peer, codec, config,
  local bus, the paper's ``instance``/``argv`` arguments, and the validated
  binding *parameters*);
* :class:`BindingParam` -- one declared parameter of a binding: its name,
  the accepted value types and a one-line description.  A binding registers
  its parameter schema alongside its factory, and every ``new_interface``
  call is validated against it *before* the factory runs: unknown keys and
  type mismatches raise :class:`PSException` messages that name the
  offending key and enumerate the accepted schema, uniformly for built-in
  and application-registered bindings alike;
* :func:`register_binding` / :func:`get_binding` /
  :func:`registered_bindings` / :func:`binding_params` -- the process-wide
  name -> factory registry and its introspection surface.

The built-in bindings self-register when their modules are imported:
``"LOCAL"`` (:mod:`repro.core.local_engine`, no parameters), ``"JXTA"``
(:mod:`repro.core.jxta_engine`, per-interface :class:`TPSConfig` field
overrides such as ``search_timeout``), ``"SHARDED"``
(:mod:`repro.core.sharded_engine`, ``shards``/``partition``/``content_key``)
and ``"SHARDED+JXTA"`` (:mod:`repro.core.composite_engine`, the sharded
in-process bus fanned out over the JXTA wire).  ``TPSEngine.new_interface``
resolves purely through :func:`get_binding`, so third-party bindings
registered by application code are first-class citizens -- parameters
included.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    Type,
    Union,
    runtime_checkable,
)

from repro.core.exceptions import PSException


@runtime_checkable
class TPSBinding(Protocol):
    """What a binding-produced interface must offer (structural typing).

    The seven operations of the paper's Figure 8 -- ``publish``,
    ``subscribe`` (single or list form), ``unsubscribe`` (one or all),
    ``objects_received``/``objects_sent`` -- plus the v2 ``close`` lifecycle.
    :class:`~repro.core.interface.TPSInterface` implements all of these, so
    subclassing it is the easiest way to satisfy the protocol; any
    structurally conforming object is accepted just the same.
    """

    def publish(self, event: Any) -> Any: ...

    def subscribe(self, callback: Any, exception_handler: Any = None) -> Any: ...

    def unsubscribe(self, callback: Any = None, exception_handler: Any = None) -> int: ...

    def objects_received(self) -> List[Any]: ...

    def objects_sent(self) -> List[Any]: ...

    def close(self) -> None: ...


@dataclass(frozen=True)
class BindingParam:
    """One declared parameter of a binding.

    ``types`` is the tuple of accepted value classes (empty accepts any
    value); ``check`` is an optional extra validator returning a problem
    string (or None when the value is fine), for constraints a type check
    cannot express (``shards >= 1``, "string or callable", ...); ``default``
    is the *effective* value when the parameter is omitted (None both for
    "no default" and for a genuine None default -- introspection only,
    factories still resolve their own fallbacks).
    """

    name: str
    types: Tuple[type, ...] = ()
    description: str = ""
    check: Optional[Callable[[Any], Optional[str]]] = None
    default: Any = None

    def describe(self) -> str:
        """``name (type, type) [=default]`` -- the schema line used in error
        messages and introspection."""
        line = self.name
        if self.types:
            accepted = "|".join(cls.__name__ for cls in self.types)
            line = f"{line} ({accepted})"
        if self.default is not None:
            line = f"{line} [={self.default!r}]"
        return line

    def problem_with(self, value: Any) -> Optional[str]:
        """Why ``value`` is unacceptable for this parameter, or None."""
        if self.types and not isinstance(value, self.types):
            accepted = " or ".join(cls.__name__ for cls in self.types)
            return (
                f"parameter {self.name!r} must be {accepted}, "
                f"got {type(value).__name__}: {value!r}"
            )
        if self.check is not None:
            complaint = self.check(value)
            if complaint:
                return f"parameter {self.name!r}: {complaint}"
        return None


@dataclass(frozen=True)
class BindingRequest:
    """One ``new_interface`` call, as seen by a binding factory.

    Mirrors the paper's ``newInterface(String name, Criteria c, Type t,
    String[] arg)`` plus the engine-level construction arguments the Python
    rendering adds (``peer``, ``codec``, ``config``, ``local_bus``) and the
    v2 binding parameters (``params``, already validated against the
    binding's declared schema by the time the factory sees them).  A factory
    picks what it needs and must raise :class:`PSException` when a required
    argument is missing (e.g. the JXTA binding without a peer).
    """

    event_type: Type[Any]
    criteria: Optional[Any] = None
    instance: Optional[Any] = None
    argv: Optional[Tuple[str, ...]] = None
    peer: Optional[Any] = None
    codec: Optional[Any] = None
    config: Optional[Any] = None
    local_bus: Optional[Any] = None
    #: Validated binding parameters of this call (never None; empty when the
    #: caller passed none).
    params: Mapping[str, Any] = field(default_factory=dict)

    def param(self, name: str, default: Any = None) -> Any:
        """The value of one binding parameter, or ``default``."""
        return self.params.get(name, default)


#: A binding factory: takes one :class:`BindingRequest`, returns an interface.
BindingFactory = Callable[[BindingRequest], Any]


@dataclass(frozen=True)
class BindingSpec:
    """One registered binding: name, factory, capability tags, param schema."""

    name: str
    factory: BindingFactory
    #: Free-form capability tags ("in-process", "distributed", "sharded", ...)
    #: for applications that pick a binding by feature rather than by name.
    capabilities: frozenset = field(default_factory=frozenset)
    #: The declared parameters, in declaration order.
    params: Tuple[BindingParam, ...] = ()
    #: Invoked (with no arguments) when the binding is unregistered.  A
    #: binding whose factory caches shared state keyed on parameter sets --
    #: the sharded bindings' registry-built bus cache, the ASYNC binding's
    #: per-loop buses -- registers its cache reset here, so an
    #: ``unregister_binding``/``register_binding`` cycle starts from a clean
    #: slate instead of resolving interfaces onto buses built by the
    #: previous, possibly different, factory.
    on_unregister: Optional[Callable[[], None]] = None

    @property
    def param_names(self) -> Tuple[str, ...]:
        """The declared parameter names, in declaration order."""
        return tuple(param.name for param in self.params)

    def describe_params(self) -> str:
        """Human-readable schema: ``a (int), b (str|float)`` or ``(none)``."""
        if not self.params:
            return "(none)"
        return ", ".join(param.describe() for param in self.params)

    def validate_params(self, params: Mapping[str, Any]) -> None:
        """Check a ``new_interface`` params mapping against the schema.

        Unknown keys raise :class:`PSException` naming the key and listing
        the accepted schema; declared keys with unacceptable values raise
        naming the key and the expectation.  Bindings with an empty schema
        reject every parameter ("accepts no parameters").
        """
        if not params:
            return
        by_name = {param.name: param for param in self.params}
        for key in params:
            if key not in by_name:
                if not self.params:
                    raise PSException(
                        f"binding {self.name!r} accepts no parameters, "
                        f"got {key!r}"
                    )
                raise PSException(
                    f"unknown parameter {key!r} for binding {self.name!r}; "
                    f"accepted parameters: {self.describe_params()}"
                )
        for key, value in params.items():
            complaint = by_name[key].problem_with(value)
            if complaint:
                raise PSException(
                    f"binding {self.name!r}: {complaint} "
                    f"(accepted parameters: {self.describe_params()})"
                )

    def create(self, request: BindingRequest) -> Any:
        """Validate ``request.params`` and build an interface via the factory."""
        self.validate_params(request.params)
        return self.factory(request)


_REGISTRY: Dict[str, BindingSpec] = {}


def _normalize(name: str) -> str:
    if not isinstance(name, str) or not name.strip():
        raise PSException(f"binding name must be a non-empty string, got {name!r}")
    return name.strip().upper()


def _normalize_params(
    name: str, params: Sequence[Union[BindingParam, str]]
) -> Tuple[BindingParam, ...]:
    normalized: List[BindingParam] = []
    seen: set = set()
    for param in params:
        if isinstance(param, str):
            param = BindingParam(param)
        if not isinstance(param, BindingParam):
            raise PSException(
                f"binding {name!r}: parameter declarations must be BindingParam "
                f"instances or names, got {param!r}"
            )
        if param.name in seen:
            raise PSException(
                f"binding {name!r}: duplicate parameter declaration {param.name!r}"
            )
        seen.add(param.name)
        normalized.append(param)
    return tuple(normalized)


def register_binding(
    name: str,
    factory: BindingFactory,
    *,
    capabilities: Sequence[str] = (),
    params: Sequence[Union[BindingParam, str]] = (),
    replace: bool = False,
    on_unregister: Optional[Callable[[], None]] = None,
) -> BindingSpec:
    """Register a binding factory under ``name`` (case-insensitive).

    ``params`` declares the binding's parameter schema (a sequence of
    :class:`BindingParam`, or bare names for untyped parameters); every
    ``new_interface(name, ..., **params)`` call is validated against it
    before the factory runs.  ``on_unregister`` (optional) is the binding's
    cache-invalidation hook, run by :func:`unregister_binding` -- see
    :attr:`BindingSpec.on_unregister`.  Returns the stored
    :class:`BindingSpec`.  Re-registering an existing name raises
    :class:`PSException` unless ``replace=True`` (the built-in bindings
    register with ``replace=True`` so module reloads stay safe).
    """
    key = _normalize(name)
    if not callable(factory):
        raise PSException(f"binding factory for {key!r} must be callable, got {factory!r}")
    if on_unregister is not None and not callable(on_unregister):
        raise PSException(
            f"on_unregister for binding {key!r} must be callable, got {on_unregister!r}"
        )
    if key in _REGISTRY and not replace:
        raise PSException(
            f"a TPS binding named {key!r} is already registered; "
            "pass replace=True to override it"
        )
    spec = BindingSpec(
        name=key,
        factory=factory,
        capabilities=frozenset(capabilities),
        params=_normalize_params(key, params),
        on_unregister=on_unregister,
    )
    _REGISTRY[key] = spec
    return spec


def unregister_binding(name: str) -> bool:
    """Remove a binding from the registry; True if it was registered.

    Runs the spec's :attr:`~BindingSpec.on_unregister` hook (when declared)
    *after* the registry entry is gone, so any shared caches the factory
    built -- e.g. the sharded bindings' same-parameter bus cache -- are
    dropped with it and a later re-registration starts clean.  Interfaces
    already created keep the bus they resolved to; only the *cache* is
    reset.
    """
    spec = _REGISTRY.pop(_normalize(name), None)
    if spec is None:
        return False
    if spec.on_unregister is not None:
        spec.on_unregister()
    return True


def get_binding(name: str) -> BindingSpec:
    """Look up a registered binding, or raise listing what *is* registered."""
    key = _normalize(name)
    spec = _REGISTRY.get(key)
    if spec is None:
        registered = ", ".join(repr(known) for known in registered_bindings())
        raise PSException(
            f"unknown TPS binding {name!r}; registered bindings: {registered or '(none)'}"
        )
    return spec


def registered_bindings(with_params: bool = False):
    """The registered binding names, sorted.

    With ``with_params=True`` returns a sorted mapping of binding name to
    its declared parameter names, so callers can discover what each binding
    accepts without resolving the spec themselves.
    """
    if with_params:
        return {name: _REGISTRY[name].param_names for name in sorted(_REGISTRY)}
    return tuple(sorted(_REGISTRY))


def binding_params(name: str) -> Tuple[BindingParam, ...]:
    """The declared parameter schema of a registered binding."""
    return get_binding(name).params


def binding_capabilities(name: str) -> frozenset:
    """The capability tags of a registered binding."""
    return get_binding(name).capabilities


__all__ = [
    "BindingFactory",
    "BindingParam",
    "BindingRequest",
    "BindingSpec",
    "TPSBinding",
    "binding_capabilities",
    "binding_params",
    "get_binding",
    "register_binding",
    "registered_bindings",
    "unregister_binding",
]
