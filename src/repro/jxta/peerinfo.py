"""Peer Information Protocol (PIP).

"The PIP is used to know the status of a peer.  This protocol is responsible
for finding and dispatching information about a peer, like the time the peer
was up, the different incoming and outgoing channels, the traffic on them,
and the different target and source IDs."  (paper, Section 2.2, Figure 3)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, TYPE_CHECKING, Union

from repro.jxta.errors import AdvertisementError
from repro.jxta.ids import PeerID
from repro.jxta.resolver import ResolverQuery, ResolverResponse
from repro.serialization.xml_codec import XmlElement, parse_xml, to_xml

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.jxta.peergroup import PeerGroup


@dataclass
class PeerInfo:
    """A snapshot of one peer's status, as reported over the PIP."""

    peer_id: PeerID
    name: str
    uptime: float
    packets_sent: int
    packets_received: int
    bytes_sent: int
    bytes_received: int
    incoming_channels: int
    outgoing_channels: int
    is_rendezvous: bool
    is_router: bool

    def to_xml(self) -> str:
        """Serialise the snapshot for the resolver response body."""
        element = XmlElement("PeerInfoResponse")
        element.add("PID", self.peer_id.to_urn())
        element.add("Name", self.name)
        element.add("Uptime", f"{self.uptime:.6f}")
        element.add("PacketsSent", str(self.packets_sent))
        element.add("PacketsReceived", str(self.packets_received))
        element.add("BytesSent", str(self.bytes_sent))
        element.add("BytesReceived", str(self.bytes_received))
        element.add("IncomingChannels", str(self.incoming_channels))
        element.add("OutgoingChannels", str(self.outgoing_channels))
        element.add("Rdv", "true" if self.is_rendezvous else "false")
        element.add("Router", "true" if self.is_router else "false")
        return to_xml(element, declaration=False)

    @classmethod
    def from_xml(cls, body: str) -> "PeerInfo":
        """Parse a snapshot serialised by :meth:`to_xml`."""
        element = parse_xml(body)
        return cls(
            peer_id=PeerID.from_urn(element.child_text("PID")),
            name=element.child_text("Name"),
            uptime=float(element.child_text("Uptime", "0")),
            packets_sent=int(element.child_text("PacketsSent", "0")),
            packets_received=int(element.child_text("PacketsReceived", "0")),
            bytes_sent=int(element.child_text("BytesSent", "0")),
            bytes_received=int(element.child_text("BytesReceived", "0")),
            incoming_channels=int(element.child_text("IncomingChannels", "0")),
            outgoing_channels=int(element.child_text("OutgoingChannels", "0")),
            is_rendezvous=element.child_text("Rdv") == "true",
            is_router=element.child_text("Router") == "true",
        )


#: Listeners receive :class:`PeerInfo` snapshots as they arrive.
PeerInfoListener = Union[Callable[[PeerInfo], None], object]


class PeerInfoService:
    """Per-group peer status queries, over the Peer Resolver Protocol."""

    HANDLER_NAME = "urn:jxta:pip"

    def __init__(self, group: "PeerGroup") -> None:
        self.group = group
        self.peer = group.peer
        self._listeners: List[PeerInfoListener] = []
        self.received: List[PeerInfo] = []
        group.resolver.register_handler(self.HANDLER_NAME, self)

    # ------------------------------------------------------------ listeners

    def add_peer_info_listener(self, listener: PeerInfoListener) -> None:
        """Register a listener for incoming peer-info responses."""
        self._listeners.append(listener)

    def remove_peer_info_listener(self, listener: PeerInfoListener) -> None:
        """Unregister a listener (missing listeners are ignored)."""
        if listener in self._listeners:
            self._listeners.remove(listener)

    # --------------------------------------------------------------- queries

    def local_peer_info(self) -> PeerInfo:
        """The status snapshot of the local peer."""
        counters = self.peer.metrics.counters()
        return PeerInfo(
            peer_id=self.peer.peer_id,
            name=self.peer.name,
            uptime=self.peer.uptime(),
            packets_sent=counters.get("packets_sent", 0),
            packets_received=counters.get("packets_received", 0),
            bytes_sent=counters.get("bytes_sent", 0),
            bytes_received=counters.get("bytes_received", 0),
            incoming_channels=len(self.peer.endpoint.client_connections()),
            outgoing_channels=len(self.peer.endpoint.rendezvous_connections()),
            is_rendezvous=self.peer.is_rendezvous,
            is_router=self.peer.is_router,
        )

    def get_remote_peer_info(self, peer: Optional[PeerID] = None) -> str:
        """Query one peer (or every reachable peer) for its status; returns the query id."""
        query = XmlElement("PeerInfoQuery")
        query.add("Requester", self.peer.peer_id.to_urn())
        return self.group.resolver.send_query(
            self.HANDLER_NAME, to_xml(query, declaration=False), dest_peer=peer
        )

    # ----------------------------------------------------- resolver handler

    def process_query(self, query: ResolverQuery) -> Optional[str]:
        """Answer a status query with the local snapshot."""
        self.peer.metrics.counter("peerinfo_queries_served").increment()
        return self.local_peer_info().to_xml()

    def process_response(self, response: ResolverResponse) -> None:
        """Record the remote snapshot and notify listeners.

        Malformed bodies -- unparseable XML, bad URNs, non-numeric fields --
        are counted and dropped, not raised into the resolver dispatch loop.
        """
        try:
            info = PeerInfo.from_xml(response.body)
        except (ValueError, AdvertisementError):
            # ValueError covers XmlParseError and the int()/float() fields.
            self.peer.metrics.counter("peerinfo_malformed").increment()
            return
        self.received.append(info)
        self.peer.metrics.counter("peerinfo_responses_received").increment()
        for listener in list(self._listeners):
            callback = getattr(listener, "peer_info_event", listener)
            callback(info)


__all__ = ["PeerInfo", "PeerInfoListener", "PeerInfoService"]
