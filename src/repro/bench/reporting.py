"""Plain-text reporting for the benchmark harness.

The runners in :mod:`repro.bench.figures` return raw series; this module
turns them into the rows/series the paper reports, so
``examples/reproduce_figures.py`` and EXPERIMENTS.md can show paper-style
tables.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from repro.bench.code_size import CodeSizeReport
from repro.bench.figures import Figure18Result, Figure19Result, Figure20Result
from repro.bench.scenario import VARIANTS


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render a small fixed-width text table."""
    materialised: List[List[str]] = [[str(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in materialised:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    def render_row(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[index]) for index, cell in enumerate(cells))

    lines = [render_row(list(headers)), render_row(["-" * width for width in widths])]
    lines.extend(render_row(row) for row in materialised)
    return "\n".join(lines)


def format_figure18(result: Figure18Result) -> str:
    """Summarise Figure 18: mean/stdev invocation time per variant and subscriber count."""
    rows = []
    for (variant, subscribers), series in sorted(result.series.items(), key=lambda i: (i[0][1], VARIANTS.index(i[0][0]))):
        rows.append(
            (
                variant,
                subscribers,
                f"{series.mean_ms:.1f}",
                f"{series.stdev_ms:.1f}",
                f"{100 * series.relative_stdev:.0f}%",
            )
        )
    header = "Figure 18 -- invocation time (ms per sendMessage call, 50 events)"
    table = format_table(
        ["variant", "subscribers", "mean ms/msg", "stdev", "rel. stdev"], rows
    )
    return f"{header}\n{table}"


def format_figure19(result: Figure19Result) -> str:
    """Summarise Figure 19: mean publisher throughput per variant and subscriber count."""
    rows = []
    for (variant, subscribers), series in sorted(result.series.items(), key=lambda i: (i[0][1], VARIANTS.index(i[0][0]))):
        rows.append((variant, subscribers, f"{series.mean_rate:.1f}"))
    header = "Figure 19 -- publisher throughput (events sent/second, 100 events, 10 epochs)"
    table = format_table(["variant", "subscribers", "events/s"], rows)
    return f"{header}\n{table}"


def format_figure20(result: Figure20Result) -> str:
    """Summarise Figure 20: mean subscriber throughput per variant and publisher count."""
    rows = []
    for (variant, publishers), series in sorted(result.series.items(), key=lambda i: (i[0][1], VARIANTS.index(i[0][0]))):
        rows.append(
            (variant, publishers, f"{series.mean_rate:.1f}", f"{series.stdev_rate:.1f}")
        )
    header = "Figure 20 -- subscriber throughput (events received/second over 50 s)"
    table = format_table(["variant", "publishers", "events/s", "stdev"], rows)
    return f"{header}\n{table}"


def format_code_size(report: CodeSizeReport) -> str:
    """Summarise the Section 4.4 programming-effort comparison."""
    rows = [
        ("SR-TPS application", report.tps_application),
        ("SR-JXTA application", report.jxta_application),
        ("JXTA-WIRE application", report.wire_application),
        ("TPS layer (repro.core)", report.tps_library),
        ("saving, this application", report.minimal_saving),
        ("saving incl. reusable layer", report.full_saving),
    ]
    header = "Section 4.4 -- programming effort (non-comment source lines)"
    table = format_table(["artifact", "lines"], rows)
    return f"{header}\n{table}"


__all__ = [
    "format_code_size",
    "format_figure18",
    "format_figure19",
    "format_figure20",
    "format_table",
]
