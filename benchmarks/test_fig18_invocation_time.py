"""Figure 18 -- invocation time.

Paper setting: one publisher produces 50 events one after the other
(1910-byte messages); the time per ``sendMessage()`` call is plotted for
JXTA-WIRE, SR-JXTA and SR-TPS with one and with four subscribers.

Shape to reproduce (not absolute numbers):

* JXTA-WIRE is the fastest; SR-JXTA and SR-TPS are virtually identical
  (the paper quotes ~1 % with one subscriber);
* four subscribers are roughly three times as expensive as one;
* the standard deviation is large (~20-30 %).
"""

from __future__ import annotations

import pytest

from repro.bench.figures import run_invocation_time
from repro.bench.scenario import JXTA_WIRE, SR_JXTA, SR_TPS, VARIANTS

EVENTS = 50


@pytest.mark.parametrize("subscribers", [1, 4])
@pytest.mark.parametrize("variant", VARIANTS)
def test_invocation_time(once, variant, subscribers):
    """One curve of Figure 18: 50 sequential publishes for one configuration."""
    series = once(run_invocation_time, variant, subscribers=subscribers, events=EVENTS)
    assert len(series.per_event_ms) == EVENTS
    assert series.mean_ms > 0


def test_figure18_shape(once):
    """The relative ordering and ratios of Figure 18 hold."""

    def run_all():
        results = {}
        for subscribers in (1, 4):
            for variant in VARIANTS:
                results[(variant, subscribers)] = run_invocation_time(
                    variant, subscribers=subscribers, events=EVENTS
                )
        return results

    results = once(run_all)

    wire_1 = results[(JXTA_WIRE, 1)].mean_ms
    jxta_1 = results[(SR_JXTA, 1)].mean_ms
    tps_1 = results[(SR_TPS, 1)].mean_ms
    wire_4 = results[(JXTA_WIRE, 4)].mean_ms
    tps_4 = results[(SR_TPS, 4)].mean_ms

    # JXTA-WIRE alone is quicker than SR-JXTA and SR-TPS.
    assert wire_1 < jxta_1
    assert wire_1 < tps_1
    # "there is virtually no difference between SR-TPS and SR-JXTA"
    assert abs(tps_1 - jxta_1) / jxta_1 < 0.06
    # SR-TPS is the (slightly) slower of the two layered variants.
    assert tps_1 >= jxta_1
    # Four subscribers cost roughly 2-3.5x one subscriber.
    assert 1.8 < wire_4 / wire_1 < 3.6
    assert 1.8 < tps_4 / tps_1 < 3.6
    # The noise is substantial (paper: ~20-30 % standard deviation).
    assert results[(JXTA_WIRE, 1)].relative_stdev > 0.08
