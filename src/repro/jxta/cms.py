"""A small content-management (cms-like) service.

The paper names the cms (content management system) service among the best
known JXTA services.  The reproduction provides a compact but functional
equivalent: peers *share* named blobs of content (codats), other peers
*search* for content by name over the Peer Resolver Protocol and *fetch* the
bytes from whichever peer advertised them.  One of the example applications
(:mod:`examples.file_sharing`, if present) and several integration tests
exercise it; neither the TPS layer nor the benchmarks depend on it.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Optional, TYPE_CHECKING

from repro.jxta.errors import AdvertisementError
from repro.jxta.ids import CodatID, PeerID
from repro.jxta.resolver import ResolverQuery, ResolverResponse
from repro.serialization.xml_codec import XmlElement, XmlParseError, parse_xml, to_xml

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.jxta.peergroup import PeerGroup


@dataclass
class ContentSummary:
    """Metadata describing one shared codat."""

    codat_id: CodatID
    name: str
    description: str
    size: int
    checksum: str
    owner: PeerID

    def to_xml_element(self) -> XmlElement:
        """Render the summary as an XML element."""
        element = XmlElement("Content")
        element.add("Id", self.codat_id.to_urn())
        element.add("Name", self.name)
        element.add("Desc", self.description)
        element.add("Size", str(self.size))
        element.add("Checksum", self.checksum)
        element.add("Owner", self.owner.to_urn())
        return element

    @classmethod
    def from_xml_element(cls, element: XmlElement) -> "ContentSummary":
        """Parse a summary rendered by :meth:`to_xml_element`."""
        return cls(
            codat_id=CodatID.from_urn(element.child_text("Id")),
            name=element.child_text("Name"),
            description=element.child_text("Desc"),
            size=int(element.child_text("Size", "0")),
            checksum=element.child_text("Checksum"),
            owner=PeerID.from_urn(element.child_text("Owner")),
        )


class ContentService:
    """Per-group content sharing: share, search and fetch codats."""

    HANDLER_NAME = "urn:jxta:cms"

    def __init__(self, group: "PeerGroup") -> None:
        self.group = group
        self.peer = group.peer
        self._local: Dict[str, tuple[ContentSummary, bytes]] = {}
        #: Summaries discovered from remote peers.
        self.found: List[ContentSummary] = []
        #: Content fetched from remote peers, keyed by codat URN.
        self.fetched: Dict[str, bytes] = {}
        group.resolver.register_handler(self.HANDLER_NAME, self)

    # ---------------------------------------------------------------- share

    def share(self, name: str, data: bytes, *, description: str = "") -> ContentSummary:
        """Share a named blob of content; returns its summary."""
        codat_id = CodatID()
        summary = ContentSummary(
            codat_id=codat_id,
            name=name,
            description=description,
            size=len(data),
            checksum=hashlib.sha256(data).hexdigest(),
            owner=self.peer.peer_id,
        )
        self._local[codat_id.to_urn()] = (summary, bytes(data))
        self.peer.metrics.counter("cms_shared").increment()
        return summary

    def unshare(self, codat_id: CodatID) -> bool:
        """Stop sharing a codat; returns whether it was shared."""
        return self._local.pop(codat_id.to_urn(), None) is not None

    def list_local(self) -> List[ContentSummary]:
        """Summaries of every locally shared codat."""
        return [summary for summary, _ in self._local.values()]

    # --------------------------------------------------------------- search

    def search_remote(self, name_pattern: str, *, peer: Optional[PeerID] = None) -> str:
        """Search other peers for content whose name matches ``name_pattern``.

        A trailing ``*`` performs prefix matching, like discovery queries.
        Matches arrive asynchronously in :attr:`found`.  Returns the query id.
        """
        query = XmlElement("ContentSearch")
        query.add("Name", name_pattern)
        return self.group.resolver.send_query(
            self.HANDLER_NAME, to_xml(query, declaration=False), dest_peer=peer
        )

    def fetch(self, summary: ContentSummary) -> str:
        """Request the bytes of a previously found codat from its owner.

        The content arrives asynchronously in :attr:`fetched`, keyed by the
        codat URN.  Returns the query id.
        """
        query = XmlElement("ContentFetch")
        query.add("Id", summary.codat_id.to_urn())
        return self.group.resolver.send_query(
            self.HANDLER_NAME, to_xml(query, declaration=False), dest_peer=summary.owner
        )

    # ----------------------------------------------------- resolver handler

    def process_query(self, query: ResolverQuery) -> Optional[str]:
        """Answer content searches and fetch requests from the local store.

        Malformed bodies are counted and dropped, not raised into the
        resolver dispatch loop.
        """
        try:
            element = parse_xml(query.body)
        except XmlParseError:
            self.peer.metrics.counter("cms_malformed").increment()
            return None
        if element.name == "ContentSearch":
            pattern = element.child_text("Name")
            matches = [
                summary
                for summary, _ in self._local.values()
                if self._name_matches(summary.name, pattern)
            ]
            if not matches:
                return None
            response = XmlElement("ContentSearchResponse")
            for summary in matches:
                response.add_child(summary.to_xml_element())
            return to_xml(response, declaration=False)
        if element.name == "ContentFetch":
            urn = element.child_text("Id")
            entry = self._local.get(urn)
            if entry is None:
                return None
            summary, data = entry
            response = XmlElement("ContentFetchResponse")
            response.add("Id", urn)
            response.add("Data", data.hex())
            response.add("Checksum", summary.checksum)
            return to_xml(response, declaration=False)
        return None

    def process_response(self, response: ResolverResponse) -> None:
        """Record search results and fetched content.

        Malformed remote input -- unparseable XML, bad URNs, non-hex
        payloads -- is counted and dropped, not raised into the resolver
        dispatch loop.  Search responses are guarded per ``<Content>`` entry
        (like discovery's per-``Adv`` guard), so one bad summary never
        discards its valid siblings.
        """
        try:
            element = parse_xml(response.body)
        except XmlParseError:
            self.peer.metrics.counter("cms_malformed").increment()
            return
        if element.name == "ContentSearchResponse":
            seen = {s.codat_id.to_urn() for s in self.found}
            for child in element.find_all("Content"):
                try:
                    summary = ContentSummary.from_xml_element(child)
                except (ValueError, AdvertisementError):
                    self.peer.metrics.counter("cms_malformed").increment()
                    continue
                urn = summary.codat_id.to_urn()
                if urn not in seen:
                    seen.add(urn)
                    self.found.append(summary)
        elif element.name == "ContentFetchResponse":
            try:
                data = bytes.fromhex(element.child_text("Data"))
            except ValueError:
                self.peer.metrics.counter("cms_malformed").increment()
                return
            checksum = element.child_text("Checksum")
            if hashlib.sha256(data).hexdigest() == checksum:
                self.fetched[element.child_text("Id")] = data
                self.peer.metrics.counter("cms_fetched").increment()
            else:
                self.peer.metrics.counter("cms_corrupt").increment()

    @staticmethod
    def _name_matches(name: str, pattern: str) -> bool:
        if pattern.endswith("*"):
            return name.startswith(pattern[:-1])
        return name == pattern


__all__ = ["ContentService", "ContentSummary"]
