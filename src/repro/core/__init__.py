"""Type-based Publish/Subscribe (TPS) -- the paper's contribution.

The public API mirrors the paper's Section 3:

* :class:`TPSEngine` -- one per event type (hierarchy); its
  :meth:`~repro.core.engine.TPSEngine.new_interface` returns a
  :class:`TPSInterface`.
* :class:`TPSInterface` -- the seven operations of Figure 8: ``publish``,
  ``subscribe`` (single callback or a list), ``unsubscribe`` (one or all),
  ``objects_received`` and ``objects_sent``.
* :class:`TPSCallBackInterface` / :class:`TPSExceptionHandler` -- the typed
  callback and exception-handler interfaces (plain callables are accepted
  everywhere).
* :class:`Criteria` -- advertisement and content filtering.
* :class:`PSException` / :class:`CallBackException` -- the API's exceptions.

Five bindings self-register with the binding registry
(:mod:`repro.core.bindings`): ``"JXTA"`` (over the simulated JXTA substrate,
:class:`JxtaTPSEngine`), ``"LOCAL"`` (in-process, :class:`LocalTPSEngine`),
``"SHARDED"`` (in-process over an N-shard bus, :class:`ShardedLocalBus`;
root- or content-keyed partitioning), ``"SHARDED+JXTA"`` (the sharded bus
fanned out over the JXTA wire, :class:`ShardedJxtaTPSEngine`) and ``"ASYNC"``
(asyncio-native, :class:`AsyncTPSEngine`: event-loop-owned bus, coroutine
subscribers, awaitable publish/backpressure -- see
:mod:`repro.core.async_engine`).  Applications add their own with
:func:`register_binding`; every binding can declare a parameter schema that
``new_interface(name, ..., **params)`` is validated against.

The v2 surface on top of the paper's Figure 8 (all back-compatible):
:meth:`~repro.core.interface.TPSInterface.subscribe` returns a
:class:`SubscriptionHandle`; the fluent
:meth:`~repro.core.interface.TPSInterface.subscription` builder pushes
``where`` predicates down into dispatch; and
:meth:`~repro.core.interface.TPSInterface.stream` returns an
:class:`EventStream` for pull-style consumption.  Interfaces and engines are
context managers with idempotent ``close()``.
"""

from __future__ import annotations

from repro.core.advertisements import (
    PS_PREFIX,
    TPSAdvertisementsCreator,
    TPSAdvertisementsFinder,
)
from repro.core.async_engine import (
    AsyncEventStream,
    AsyncLocalBus,
    AsyncTPSEngine,
)
from repro.core.bindings import (
    BindingParam,
    BindingRequest,
    BindingSpec,
    TPSBinding,
    binding_capabilities,
    binding_params,
    get_binding,
    register_binding,
    registered_bindings,
    unregister_binding,
)
from repro.core.callbacks import (
    CollectingCallback,
    CollectingExceptionHandler,
    FilteringCallback,
    FunctionCallback,
    FunctionExceptionHandler,
    PrintingExceptionHandler,
    TPSCallBackInterface,
    TPSExceptionHandler,
)
from repro.core.composite_engine import ShardedJxtaTPSEngine
from repro.core.engine import TPSEngine
from repro.core.exceptions import (
    CallBackException,
    NotInitializedError,
    PSException,
    TypeMismatchError,
)
from repro.core.interface import (
    PublishReceipt,
    Subscription,
    TPSInterface,
    TPSInterfaceCore,
)
from repro.core.jxta_engine import JxtaTPSEngine, TPSAttachment, TPSConfig
from repro.core.local_engine import LocalBus, LocalTPSEngine
from repro.core.reply import Reply, ReplyEndpoint, Replyable, reply
from repro.core.sharded_engine import DEFAULT_SHARD_COUNT, ShardedLocalBus
from repro.core.subscriber import TPSPipeReader, TPSSubscriberManager
from repro.core.subscriptions import (
    EventStream,
    StreamCore,
    SubscriptionBuilder,
    SubscriptionHandle,
)
from repro.core.type_registry import (
    Criteria,
    TypeRegistry,
    all_subtypes,
    hierarchy_root,
    type_name,
)
from repro.core.wire_finder import (
    TPSMyInputPipe,
    TPSMyOutputPipe,
    TPSWireServiceFinder,
    WireServiceFinderException,
)
from repro.core.xml_types import (
    DynamicEvent,
    XmlEventCodec,
    XmlTypeDescription,
    describe_type,
)

__all__ = [
    "AsyncEventStream",
    "AsyncLocalBus",
    "AsyncTPSEngine",
    "BindingParam",
    "BindingRequest",
    "BindingSpec",
    "DEFAULT_SHARD_COUNT",
    "DynamicEvent",
    "EventStream",
    "FilteringCallback",
    "Reply",
    "ReplyEndpoint",
    "Replyable",
    "XmlEventCodec",
    "XmlTypeDescription",
    "describe_type",
    "reply",
    "CallBackException",
    "CollectingCallback",
    "CollectingExceptionHandler",
    "Criteria",
    "FunctionCallback",
    "FunctionExceptionHandler",
    "JxtaTPSEngine",
    "LocalBus",
    "LocalTPSEngine",
    "NotInitializedError",
    "PSException",
    "PS_PREFIX",
    "PrintingExceptionHandler",
    "PublishReceipt",
    "ShardedJxtaTPSEngine",
    "ShardedLocalBus",
    "StreamCore",
    "Subscription",
    "SubscriptionBuilder",
    "SubscriptionHandle",
    "TPSAdvertisementsCreator",
    "TPSAdvertisementsFinder",
    "TPSAttachment",
    "TPSBinding",
    "TPSCallBackInterface",
    "TPSConfig",
    "TPSEngine",
    "TPSExceptionHandler",
    "TPSInterface",
    "TPSInterfaceCore",
    "TPSMyInputPipe",
    "TPSMyOutputPipe",
    "TPSPipeReader",
    "TPSSubscriberManager",
    "TPSWireServiceFinder",
    "TypeMismatchError",
    "TypeRegistry",
    "all_subtypes",
    "binding_capabilities",
    "binding_params",
    "get_binding",
    "hierarchy_root",
    "register_binding",
    "registered_bindings",
    "type_name",
    "unregister_binding",
]
