"""Event types of the ski-rental application.

The paper's type (Section 4.3.1)::

    public class SkiRental implements Serializable {
        public SkiRental(String shop, float price, String brand, float numberOfDays) {...}
        public String toString() {...}
    }

The reproduction keeps :class:`SkiRental` with the same four fields, and adds
a small hierarchy around it so the subtype-matching semantics of Figure 7 can
be demonstrated and tested: :class:`RentalOffer` is the root,
:class:`SkiRental` and :class:`SnowboardRental` are siblings, and
:class:`PremiumSkiRental` specialises :class:`SkiRental`.  A subscriber to
``RentalOffer`` receives everything; a subscriber to ``SkiRental`` receives
ski (and premium-ski) offers but no snowboard offers.
"""

from __future__ import annotations

from typing import Any


class RentalOffer:
    """Root of the rental-offer hierarchy: something a shop offers for rent."""

    def __init__(self, shop: str, price: float, number_of_days: float) -> None:
        self.shop = shop
        self.price = float(price)
        self.number_of_days = float(number_of_days)

    @property
    def price_per_day(self) -> float:
        """The offer's price divided by its rental duration."""
        if self.number_of_days <= 0:
            return self.price
        return self.price / self.number_of_days

    def __eq__(self, other: Any) -> bool:
        if not isinstance(other, RentalOffer):
            return NotImplemented
        return type(self) is type(other) and vars(self) == vars(other)

    def __hash__(self) -> int:
        return hash((type(self).__name__, tuple(sorted(vars(self).items()))))

    def __repr__(self) -> str:
        fields = ", ".join(f"{key}={value!r}" for key, value in vars(self).items())
        return f"{type(self).__name__}({fields})"

    def __str__(self) -> str:
        return (
            f"{type(self).__name__} from {self.shop}: "
            f"{self.price:.2f} for {self.number_of_days:g} day(s)"
        )


class SkiRental(RentalOffer):
    """A ski-rental offer: shop, price, brand and rental duration (the paper's type)."""

    def __init__(self, shop: str, price: float, brand: str, number_of_days: float) -> None:
        super().__init__(shop, price, number_of_days)
        self.brand = brand

    def __str__(self) -> str:
        return (
            f"Skis that could be rented from {self.shop}: {self.brand} at "
            f"{self.price:.2f} for {self.number_of_days:g} day(s)"
        )


class PremiumSkiRental(SkiRental):
    """A ski rental bundled with extras (insurance, boots, helmet...)."""

    def __init__(
        self,
        shop: str,
        price: float,
        brand: str,
        number_of_days: float,
        extras: tuple[str, ...] = (),
    ) -> None:
        super().__init__(shop, price, brand, number_of_days)
        self.extras = tuple(extras)

    def __str__(self) -> str:
        extras = ", ".join(self.extras) if self.extras else "no extras"
        return f"{super().__str__()} ({extras})"


class SnowboardRental(RentalOffer):
    """A snowboard-rental offer; a sibling of :class:`SkiRental` in the hierarchy."""

    def __init__(
        self, shop: str, price: float, brand: str, number_of_days: float, stance: str = "regular"
    ) -> None:
        super().__init__(shop, price, number_of_days)
        self.brand = brand
        self.stance = stance

    def __str__(self) -> str:
        return (
            f"Snowboard ({self.stance}) from {self.shop}: {self.brand} at "
            f"{self.price:.2f} for {self.number_of_days:g} day(s)"
        )


__all__ = ["PremiumSkiRental", "RentalOffer", "SkiRental", "SnowboardRental"]
