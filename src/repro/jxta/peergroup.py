"""Peer groups and their hosted services.

"PeerGroups are collections of peers.  A peer may join multiple peergroups
to share different resources and services.  There is no hierarchy inside the
groups.  A peergroup creates a scoped and monitored environment."
(paper, Section 2.1)

A :class:`PeerGroup` is a *local* view: each participating peer instantiates
the group (from its advertisement) and thereby gets its own set of group
services -- resolver, discovery, membership, pipe binding, peer info,
rendez-vous, wire, monitoring and content.  Traffic is scoped per group: the
services register endpoint listeners and resolver handlers parameterised by
the group ID, so two groups never see each other's queries or messages.
"""

from __future__ import annotations

from typing import Dict, Optional, TYPE_CHECKING

from repro.jxta.advertisement import PeerGroupAdvertisement, ServiceAdvertisement
from repro.jxta.cms import ContentService
from repro.jxta.discovery import DiscoveryService
from repro.jxta.errors import ServiceNotFoundError
from repro.jxta.ids import PeerGroupID
from repro.jxta.membership import MembershipService
from repro.jxta.monitoring import MonitoringService
from repro.jxta.peerinfo import PeerInfoService
from repro.jxta.pipe_binding import PipeBindingService
from repro.jxta.rendezvous import RendezvousService
from repro.jxta.resolver import ResolverService
from repro.jxta.routing import EndpointRouter
from repro.jxta.wire import WireService

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.jxta.peer import Peer


class PeerGroup:
    """One peer's instantiation of a peer group and its services."""

    #: Well-known service names usable with :meth:`lookup_service`.
    RESOLVER = ResolverService.SERVICE_NAME
    DISCOVERY = DiscoveryService.SERVICE_NAME
    MEMBERSHIP = MembershipService.SERVICE_NAME
    PIPE = PipeBindingService.SERVICE_NAME
    RENDEZVOUS = RendezvousService.SERVICE_NAME
    WIRE = WireService.WireName
    PEERINFO = "jxta.service.peerinfo"
    MONITORING = "jxta.service.monitoring"
    CMS = "jxta.service.cms"

    def __init__(
        self,
        peer: "Peer",
        advertisement: PeerGroupAdvertisement,
        *,
        parent: Optional["PeerGroup"] = None,
    ) -> None:
        self.peer = peer
        self.advertisement = advertisement
        self.parent = parent
        # Service construction order matters: the resolver first (everything
        # registers handlers with it), then the rest.
        self.resolver = ResolverService(self)
        self.discovery = DiscoveryService(self)
        self.membership = MembershipService(self)
        self.pipe_service = PipeBindingService(self)
        self.peerinfo = PeerInfoService(self)
        self.rendezvous = RendezvousService(self)
        self.wire = WireService(self)
        self.monitoring = MonitoringService(self)
        self.content = ContentService(self)
        self.router = EndpointRouter(peer)
        self._services: Dict[str, object] = {
            self.RESOLVER: self.resolver,
            self.DISCOVERY: self.discovery,
            self.MEMBERSHIP: self.membership,
            self.PIPE: self.pipe_service,
            self.PEERINFO: self.peerinfo,
            self.RENDEZVOUS: self.rendezvous,
            self.WIRE: self.wire,
            self.MONITORING: self.monitoring,
            self.CMS: self.content,
        }
        peer._register_group(self)

    # ------------------------------------------------------------ properties

    @property
    def group_id(self) -> PeerGroupID:
        """The group's stable identifier."""
        return self.advertisement.group_id

    @property
    def name(self) -> str:
        """The group's advertised name."""
        return self.advertisement.name

    def get_peer_id(self):
        """The local peer's ID (``rootGroup.getPeerID()`` in Figure 15)."""
        return self.peer.peer_id

    def get_id(self) -> PeerGroupID:
        """The group's ID (``rootGroup.getID()`` in Figure 15)."""
        return self.group_id

    def get_advertisement(self) -> PeerGroupAdvertisement:
        """The group's advertisement (``par.getAdvertisement()`` in Figure 15)."""
        return self.advertisement

    # -------------------------------------------------------------- services

    def lookup_service(self, name: str):
        """Return the hosted service registered under ``name``.

        This is the ``wireGroup.lookupService(WireService.WireName)`` call of
        the paper's Figure 17.  Raises :class:`ServiceNotFoundError` for
        unknown names.
        """
        service = self._services.get(name)
        if service is None:
            raise ServiceNotFoundError(
                f"group {self.name!r} hosts no service named {name!r}"
            )
        return service

    def service_names(self) -> list[str]:
        """Names of all hosted services."""
        return sorted(self._services)

    # ----------------------------------------------------------- sub-groups

    def new_group(self, advertisement: PeerGroupAdvertisement) -> "PeerGroup":
        """Instantiate a child peer group from its advertisement.

        This is ``PeerGroupFactory.newPeerGroup(); wireGroup.init(parent,
        adv)`` from Figure 17 collapsed into one call.  The child group gets
        its own scoped services; the advertisement is published in this
        group's discovery cache so other local lookups find it.
        """
        child = PeerGroup(self.peer, advertisement, parent=self)
        self.discovery.publish(advertisement, DiscoveryService.GROUP)
        return child

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"PeerGroup({self.name!r}, {self.group_id!r}, peer={self.peer.name!r})"


__all__ = ["PeerGroup"]
