"""The tier-1 lint gate: the committed tree stays clean.

This is the test that makes the ``repro.analysis`` invariants binding: any
new raw ``acquire()``, call-out under a lock, snapshot mutation, wall-clock
read on a simulated path, or silent broad catch fails the suite here --
with the offending ``file:line``, the rule id and the fix hint in the
assertion message.  Deliberate exceptions are either inline-suppressed next
to the code they excuse, or (only for files that must not be edited, like
the ROADMAP-protected ski-rental JXTA app) carried in the committed
``lint-baseline.json`` with a note saying why.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.analysis import (
    Baseline,
    DEFAULT_PROFILE,
    LintEngine,
    SCHEMA,
    validate_document,
)
from repro.__main__ import main

pytestmark = pytest.mark.lint

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SOURCE_TREE = os.path.join(REPO_ROOT, "src", "repro")
BASELINE_PATH = os.path.join(REPO_ROOT, "lint-baseline.json")


def test_source_tree_is_lint_clean():
    engine = LintEngine(DEFAULT_PROFILE)
    run = engine.lint_paths([SOURCE_TREE])
    findings, _ = Baseline.load(BASELINE_PATH).filter(run.findings)
    report = "\n".join(finding.format() for finding in findings)
    assert findings == [], (
        f"{len(findings)} new lint finding(s) -- fix them or add an inline "
        f"'# repro-lint: disable=...' with a reason (docs/CONCURRENCY.md):\n{report}"
    )
    assert run.files > 70  # the walker really covered the tree


def test_every_core_module_is_covered_by_some_profile_scope():
    """Every module under ``src/repro/core`` must fall inside at least one
    DEFAULT_PROFILE scope -- a new core subsystem that nobody registered
    (the way ``repro.core.async_engine`` is, via the repo-wide RL001/RL002/
    RL005 scopes *and* RL004's ``repro.core`` package) would otherwise ship
    unlinted."""
    from repro.analysis.engine import module_name

    core_dir = os.path.join(SOURCE_TREE, "core")
    modules = [
        module_name(os.path.join(core_dir, name))
        for name in sorted(os.listdir(core_dir))
        if name.endswith(".py")
    ]
    assert "repro.core.async_engine" in modules
    for module in modules:
        covered = [
            rule
            for rule, scope in DEFAULT_PROFILE.items()
            if scope.applies_to(module)
        ]
        assert covered, f"core module {module} matches no DEFAULT_PROFILE scope"
    # The asyncio binding is in the determinism domain, not just the
    # repo-wide lock rules: it must not import wall-clock/RNG modules.
    assert DEFAULT_PROFILE["RL004"].applies_to("repro.core.async_engine")


def test_every_baseline_entry_still_matches_a_finding():
    """A stale baseline entry means the exception it excused is gone --
    the entry must be deleted, or it will silently grandfather the next,
    unrelated violation with the same snippet."""
    engine = LintEngine(DEFAULT_PROFILE)
    run = engine.lint_paths([SOURCE_TREE])
    baseline = Baseline.load(BASELINE_PATH)
    for entry in baseline.entries:
        assert entry.note, f"baseline entry {entry.key} has no explanatory note"
        assert any(
            baseline.covers(finding)
            and finding.key == (entry.rule, finding.key[1], entry.snippet)
            for finding in run.findings
        ), f"stale baseline entry (no longer matches any finding): {entry.key}"


def test_cli_smoke_json_document(capsys):
    """The acceptance command: exit 0 and a valid repro-lint/v1 document."""
    exit_code = main(
        ["lint", "--json", "--baseline", BASELINE_PATH, SOURCE_TREE]
    )
    document = json.loads(capsys.readouterr().out)
    assert exit_code == 0
    assert document["schema"] == SCHEMA == "repro-lint/v1"
    assert validate_document(document) == []
    assert document["findings"] == []
    assert document["baselined"] >= 1  # the ski-rental JXTA app exception
    assert document["suppressed"] >= 5  # the documented inline pragmas
    assert document["rules"] == ["RL001", "RL002", "RL003", "RL004", "RL005"]


def test_deleting_the_baseline_reveals_only_documented_exceptions():
    """Without the baseline, every surviving finding must be in a file the
    repo explicitly refuses to edit (the paper-faithful JXTA app)."""
    engine = LintEngine(DEFAULT_PROFILE)
    run = engine.lint_paths([SOURCE_TREE])
    assert run.findings, "expected the known baselined exception to fire"
    for finding in run.findings:
        assert finding.path.replace("\\", "/").endswith(
            "apps/skirental/jxta_app.py"
        ), f"undocumented finding outside the protected file: {finding.format()}"
