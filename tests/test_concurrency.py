"""Threaded stress tests for the concurrent TPS bus (PR 4).

Every test that starts threads joins them against a hard wall-clock
deadline: a regression that deadlocks (a producer sleeping on a cancelled
subscription, a lost condition wake, a lock-ordering cycle) fails the test
with a named-thread diagnostic instead of hanging CI.

Covered surfaces:

* ``LocalBus`` -- concurrent publish x subscribe/cancel churn x
  attach/detach/close churn: no lost or duplicated deliveries to a resident
  subscriber, no exceptions escaping any thread;
* ``ShardedLocalBus`` -- concurrent publishers on independent hierarchies,
  the ``publish_all`` cross-shard batch path, and the ``publish_many``
  batch API;
* ``SubscriptionHandle.cancel`` -- exactly-once under concurrent callers;
* ``EventStream`` -- producer/consumer handoff with ``"block"``
  backpressure, concurrent close, and the re-entrant
  publisher-is-the-only-consumer deadlock detection;
* mid-dispatch engine close -- a callback closing another engine keeps that
  engine from receiving the in-flight event (the stale-row fix).
"""

from __future__ import annotations

import dataclasses
import threading
import time
from typing import Any, Callable, List

import pytest

from repro.core.callbacks import CollectingExceptionHandler
from repro.core.exceptions import PSException
from repro.core.local_engine import LocalBus, LocalTPSEngine
from repro.core.sharded_engine import ShardedLocalBus

#: The whole module is wall-clock stress testing: marked so a fast local
#: loop can deselect it (``-m "not slow"``) while tier-1 runs everything.
pytestmark = [pytest.mark.slow, pytest.mark.stress]

#: Hard wall-clock ceiling for any single test's thread group.
DEADLINE_S = 20.0


@dataclasses.dataclass
class Offer:
    price: float = 0.0
    sequence: int = 0


@dataclasses.dataclass
class AlphaEvent:
    value: int = 0


@dataclasses.dataclass
class BetaEvent:
    value: int = 0


@dataclasses.dataclass
class GammaEvent:
    value: int = 0


@dataclasses.dataclass
class DeltaEvent:
    value: int = 0


HIERARCHIES = (AlphaEvent, BetaEvent, GammaEvent, DeltaEvent)


class ThreadGroup:
    """Runs callables on named daemon threads; join() enforces the deadline
    and re-raises the first exception any worker hit."""

    def __init__(self) -> None:
        self.threads: List[threading.Thread] = []
        self.errors: List[BaseException] = []

    def spawn(self, fn: Callable[[], None], name: str) -> None:
        def run() -> None:
            try:
                fn()
            except BaseException as error:  # noqa: BLE001 - re-raised in join
                self.errors.append(error)

        thread = threading.Thread(target=run, name=name, daemon=True)
        self.threads.append(thread)

    def start(self) -> None:
        for thread in self.threads:
            thread.start()

    def join(self, deadline: float = DEADLINE_S) -> None:
        end = time.monotonic() + deadline
        for thread in self.threads:
            thread.join(max(0.05, end - time.monotonic()))
        stuck = [thread.name for thread in self.threads if thread.is_alive()]
        assert not stuck, f"threads still running after {deadline}s: {stuck}"
        if self.errors:
            raise self.errors[0]


class TestLocalBusUnderContention:
    def test_publish_with_subscribe_cancel_churn_loses_nothing(self):
        bus = LocalBus()
        publishers = [LocalTPSEngine(Offer, bus=bus) for _ in range(2)]
        resident = LocalTPSEngine(Offer, bus=bus)
        received: List[Any] = []
        resident.subscribe(received.append)
        churn_engine = LocalTPSEngine(Offer, bus=bus)
        events_per_publisher = 300
        stop_churn = threading.Event()

        def publish_loop(publisher: LocalTPSEngine) -> None:
            for sequence in range(events_per_publisher):
                publisher.publish(Offer(10.0, sequence))

        def churn_loop() -> None:
            while not stop_churn.is_set():
                handle = churn_engine.subscribe(lambda event: None)
                handle.cancel()

        group = ThreadGroup()
        for index, publisher in enumerate(publishers):
            group.spawn(lambda p=publisher: publish_loop(p), f"publisher-{index}")
        group.spawn(churn_loop, "churn")
        group.start()
        for thread in group.threads:
            if thread.name != "churn":
                thread.join(DEADLINE_S)
        stop_churn.set()
        group.join()
        # Every publish delivers to the resident subscriber exactly once:
        # churn on other subscriptions must not lose or duplicate events.
        assert len(received) == len(publishers) * events_per_publisher

    def test_publish_with_attach_detach_close_churn(self):
        bus = LocalBus()
        publisher = LocalTPSEngine(Offer, bus=bus)
        resident = LocalTPSEngine(Offer, bus=bus)
        received: List[Any] = []
        resident.subscribe(received.append)
        events = 400
        stop_churn = threading.Event()

        def publish_loop() -> None:
            for sequence in range(events):
                publisher.publish(Offer(10.0, sequence))

        def lifecycle_churn() -> None:
            while not stop_churn.is_set():
                transient = LocalTPSEngine(Offer, bus=bus)
                transient.subscribe(lambda event: None)
                transient.close()

        group = ThreadGroup()
        group.spawn(publish_loop, "publisher")
        group.spawn(lifecycle_churn, "lifecycle-churn")
        group.spawn(lifecycle_churn, "lifecycle-churn-2")
        group.start()
        group.threads[0].join(DEADLINE_S)
        stop_churn.set()
        group.join()
        assert len(received) == events
        # Route tables settled: one more publish still reaches the resident.
        publisher.publish(Offer(1.0, events))
        assert len(received) == events + 1

    def test_callback_closing_another_engine_mid_dispatch_skips_it(self):
        # The stale-row fix, single-threaded and deterministic: the route row
        # is resolved before dispatch starts, so without the closed check the
        # victim would still receive the in-flight event.
        bus = LocalBus()
        publisher = LocalTPSEngine(Offer, bus=bus)
        closer = LocalTPSEngine(Offer, bus=bus)
        victim = LocalTPSEngine(Offer, bus=bus)
        victim_received: List[Any] = []
        victim.subscribe(victim_received.append)
        closer.subscribe(lambda event: victim.close())
        receipt = publisher.publish(Offer(99.0, 0))
        assert victim.closed
        assert victim_received == []
        assert victim.objects_received() == []
        assert receipt.wire_receipts == [1]  # only the closer engine


class TestShardedBusConcurrency:
    def test_independent_hierarchies_deliver_exact_counts(self):
        bus = ShardedLocalBus(shards=len(HIERARCHIES))
        events_per_hierarchy = 300
        publishers = []
        counters: List[List[Any]] = []
        for event_type in HIERARCHIES:
            publisher = LocalTPSEngine(event_type, bus=bus)
            subscriber = LocalTPSEngine(event_type, bus=bus)
            received: List[Any] = []
            subscriber.subscribe(received.append)
            publishers.append(publisher)
            counters.append(received)

        def publish_loop(publisher: LocalTPSEngine, event_type: type) -> None:
            for sequence in range(events_per_hierarchy):
                publisher.publish(event_type(sequence))

        group = ThreadGroup()
        for index, (publisher, event_type) in enumerate(zip(publishers, HIERARCHIES)):
            group.spawn(
                lambda p=publisher, t=event_type: publish_loop(p, t),
                f"publisher-{index}",
            )
        group.start()
        group.join()
        for event_type, received in zip(HIERARCHIES, counters):
            assert len(received) == events_per_hierarchy
            assert all(isinstance(event, event_type) for event in received)
            # Per-hierarchy publish order is preserved.
            assert [event.value for event in received] == list(range(events_per_hierarchy))

    def test_publish_all_fans_out_across_shards_in_job_order(self):
        bus = ShardedLocalBus(shards=len(HIERARCHIES))
        publishers = {}
        received = {}
        for event_type in HIERARCHIES:
            publishers[event_type] = LocalTPSEngine(event_type, bus=bus)
            subscriber = LocalTPSEngine(event_type, bus=bus)
            received[event_type] = []
            subscriber.subscribe(received[event_type].append)
        jobs = []
        for sequence in range(50):
            for event_type in HIERARCHIES:
                jobs.append((publishers[event_type], event_type(sequence)))
        counts = bus.publish_all(jobs)
        assert counts == [1] * len(jobs)
        for event_type in HIERARCHIES:
            assert [event.value for event in received[event_type]] == list(range(50))
        bus.shutdown()
        bus.shutdown()  # idempotent

    def test_nested_publish_all_from_callbacks_does_not_deadlock(self):
        # A subscriber callback that itself publishes a cross-shard batch
        # runs on a pool worker; submitting to (and waiting on) the same
        # saturated pool would deadlock, so nested batches must run inline.
        bus = ShardedLocalBus(shards=2)
        alpha_pub = LocalTPSEngine(AlphaEvent, bus=bus)
        beta_pub = LocalTPSEngine(BetaEvent, bus=bus)
        inner_alpha: List[Any] = []
        inner_beta: List[Any] = []

        def republish(event: Any) -> None:
            if getattr(event, "value", 0) == 0:  # only the outer batch fans out
                bus.publish_all(
                    [(alpha_pub, AlphaEvent(1)), (beta_pub, BetaEvent(1))]
                )

        for event_type, sink in ((AlphaEvent, inner_alpha), (BetaEvent, inner_beta)):
            subscriber = LocalTPSEngine(event_type, bus=bus)
            subscriber.subscribe(sink.append)
            subscriber.subscribe(republish)

        def outer_batch() -> None:
            bus.publish_all([(alpha_pub, AlphaEvent(0)), (beta_pub, BetaEvent(0))])

        group = ThreadGroup()
        group.spawn(outer_batch, "outer-batch")
        group.start()
        group.join()  # a regression deadlocks the pool and fails here
        # Outer event + one re-published event per hierarchy's republisher
        # (arrival order races between the caller-inline and worker groups).
        assert sorted(event.value for event in inner_alpha) == [0, 1, 1]
        assert sorted(event.value for event in inner_beta) == [0, 1, 1]
        bus.shutdown()

    def test_publish_all_single_shard_runs_inline_without_executor(self):
        bus = ShardedLocalBus(shards=4)
        publisher = LocalTPSEngine(Offer, bus=bus)
        subscriber = LocalTPSEngine(Offer, bus=bus)
        received: List[Any] = []
        subscriber.subscribe(received.append)
        counts = bus.publish_all([(publisher, Offer(1.0, i)) for i in range(10)])
        assert counts == [1] * 10
        assert len(received) == 10
        assert bus._executor is None  # no threads for a single-shard batch

    def test_publish_many_batch_api(self):
        bus = ShardedLocalBus(shards=4)
        publisher = LocalTPSEngine(Offer, bus=bus)
        subscriber = LocalTPSEngine(Offer, bus=bus)
        received: List[Any] = []
        subscriber.subscribe(received.append)
        batch = [Offer(float(i), i) for i in range(20)]
        receipts = publisher.publish_many(batch)
        assert len(receipts) == 20
        assert all(receipt.wire_receipts == [1] for receipt in receipts)
        assert [event.sequence for event in received] == list(range(20))
        assert publisher.objects_sent() == batch

    def test_publish_many_on_plain_local_bus_falls_back_to_loop(self):
        bus = LocalBus()
        publisher = LocalTPSEngine(Offer, bus=bus)
        subscriber = LocalTPSEngine(Offer, bus=bus)
        received: List[Any] = []
        subscriber.subscribe(received.append)
        receipts = publisher.publish_many([Offer(1.0, 0), Offer(2.0, 1)])
        assert len(receipts) == 2
        assert [event.sequence for event in received] == [0, 1]

    def test_publish_many_validates_whole_batch_before_delivering(self):
        bus = LocalBus()
        publisher = LocalTPSEngine(Offer, bus=bus)
        subscriber = LocalTPSEngine(Offer, bus=bus)
        received: List[Any] = []
        subscriber.subscribe(received.append)
        with pytest.raises(PSException):
            publisher.publish_many([Offer(1.0, 0), "not an offer"])
        assert received == []  # nothing delivered from the bad batch

    def test_publish_many_after_close_raises(self):
        publisher = LocalTPSEngine(Offer, bus=LocalBus())
        publisher.close()
        with pytest.raises(PSException):
            publisher.publish_many([Offer(1.0, 0)])


class TestSubscriptionHandleRace:
    def test_concurrent_cancel_runs_discards_exactly_once(self):
        for _ in range(20):
            engine = LocalTPSEngine(Offer, bus=LocalBus())
            handle = engine.subscribe(lambda event: None)
            results: List[int] = []
            barrier = threading.Barrier(8)

            def cancel() -> None:
                barrier.wait()
                results.append(handle.cancel())

            group = ThreadGroup()
            for index in range(8):
                group.spawn(cancel, f"cancel-{index}")
            group.start()
            group.join()
            # Exactly one caller observed the removal; the rest were no-ops.
            assert sorted(results, reverse=True) == [1, 0, 0, 0, 0, 0, 0, 0]
            assert len(engine.subscriber_manager) == 0


class TestEventStreamConcurrency:
    def test_blocking_producer_consumer_handoff(self):
        bus = LocalBus()
        publisher = LocalTPSEngine(Offer, bus=bus)
        subscriber = LocalTPSEngine(Offer, bus=bus)
        stream = subscriber.stream(maxsize=4, policy="block")
        events = 200

        def produce() -> None:
            for sequence in range(events):
                publisher.publish(Offer(10.0, sequence))

        group = ThreadGroup()
        group.spawn(produce, "producer")
        group.start()
        consumed = [stream.get(timeout=DEADLINE_S) for _ in range(events)]
        group.join()
        assert [event.sequence for event in consumed] == list(range(events))
        stream.close()

    def test_concurrent_close_wakes_blocked_producer_exactly_once(self):
        bus = LocalBus()
        publisher = LocalTPSEngine(Offer, bus=bus)
        subscriber = LocalTPSEngine(Offer, bus=bus)
        stream = subscriber.stream(maxsize=1, policy="block")
        publisher.publish(Offer(1.0, 0))  # fills the buffer
        producer_blocked = threading.Event()

        def produce_blocked() -> None:
            producer_blocked.set()
            publisher.publish(Offer(2.0, 1))  # blocks on _not_full until close

        group = ThreadGroup()
        group.spawn(produce_blocked, "blocked-producer")
        for index in range(4):
            group.spawn(stream.close, f"closer-{index}")
        group.threads[0].start()
        producer_blocked.wait(DEADLINE_S)
        time.sleep(0.05)  # let the producer reach the wait
        for thread in group.threads[1:]:
            thread.start()
        group.join()
        assert stream.closed
        # The stream unregistered exactly once (a double unregister would
        # have raised ValueError inside a closer thread and failed join()).
        assert stream not in getattr(subscriber, "_open_streams", [])

    def test_interface_close_wakes_blocked_consumer(self):
        bus = LocalBus()
        subscriber = LocalTPSEngine(Offer, bus=bus)
        stream = subscriber.stream(maxsize=0, policy="block")
        consumer_started = threading.Event()
        outcome: List[str] = []

        def consume() -> None:
            consumer_started.set()
            try:
                stream.get(timeout=DEADLINE_S)
                outcome.append("event")
            except PSException:
                outcome.append("closed")

        group = ThreadGroup()
        group.spawn(consume, "consumer")
        group.start()
        consumer_started.wait(DEADLINE_S)
        time.sleep(0.05)
        subscriber.close()
        group.join()
        assert outcome == ["closed"]

    def test_block_policy_reentrant_self_deadlock_raises(self):
        bus = LocalBus()
        publisher = LocalTPSEngine(Offer, bus=bus)
        subscriber = LocalTPSEngine(Offer, bus=bus)
        errors = CollectingExceptionHandler()
        stream = subscriber.subscription().on_error(errors).stream(maxsize=1)

        def consume_then_publish_into_full_buffer() -> None:
            publisher.publish(Offer(1.0, 0))
            assert stream.get(timeout=5.0).sequence == 0  # registers consumer
            publisher.publish(Offer(2.0, 1))  # refills the buffer
            # Publishing from the stream's only consumer thread with a full
            # buffer: must raise into the error route, not hang.
            publisher.publish(Offer(3.0, 2))

        group = ThreadGroup()
        group.spawn(consume_then_publish_into_full_buffer, "self-consumer")
        group.start()
        group.join()  # a regression deadlocks here, not forever
        assert len(errors.errors) == 1
        assert isinstance(errors.errors[0], PSException)
        assert "deadlock" in str(errors.errors[0])
        # The buffered event is still readable and the stream still works.
        assert stream.get(timeout=1.0).sequence == 1
        stream.close()

    def test_block_policy_still_blocks_with_a_real_consumer_thread(self):
        bus = LocalBus()
        publisher = LocalTPSEngine(Offer, bus=bus)
        subscriber = LocalTPSEngine(Offer, bus=bus)
        stream = subscriber.stream(maxsize=1, policy="block")
        consumed: List[Any] = []

        def consume() -> None:
            for _ in range(3):
                consumed.append(stream.get(timeout=DEADLINE_S))

        group = ThreadGroup()
        group.spawn(consume, "consumer")
        group.start()
        for sequence in range(3):  # publisher thread != consumer: blocking ok
            publisher.publish(Offer(1.0, sequence))
        group.join()
        assert [event.sequence for event in consumed] == [0, 1, 2]
        stream.close()


class TestEngineLifecycleRaces:
    def test_concurrent_interface_close_is_idempotent(self):
        engine = LocalTPSEngine(Offer, bus=LocalBus())
        engine.subscribe(lambda event: None)
        group = ThreadGroup()
        for index in range(8):
            group.spawn(engine.close, f"closer-{index}")
        group.start()
        group.join()
        assert engine.closed
        assert len(engine.subscriber_manager) == 0

    def test_tps_engine_close_races_new_interface_without_leaks(self):
        from repro.core.engine import TPSEngine

        for _ in range(10):
            engine = TPSEngine(Offer, local_bus=LocalBus())
            created: List[Any] = []

            def open_interfaces() -> None:
                try:
                    while True:
                        created.append(engine.new_interface("LOCAL"))
                except PSException:
                    return  # the engine closed under us: expected

            group = ThreadGroup()
            group.spawn(open_interfaces, "opener")
            group.start()
            time.sleep(0.002)
            engine.close()
            group.join()
            # No interface leaked open past close(): everything the opener
            # got back is either tracked (and closed) or was refused.
            assert all(interface.closed for interface in engine.interfaces)
            assert all(
                interface.closed or interface in engine.interfaces
                for interface in created
            )
