"""A compact binary codec for application-defined event objects.

The paper's event types are plain serialisable Java classes
(``public class SkiRental implements Serializable``).  When a publisher calls
``publish(new SkiRental(...))`` the instance is serialised, carried inside a
JXTA message across the wire service, and reconstructed on each subscriber so
the typed callback (``handle(SkiRental skiR)``) receives a real object of the
right type.

:class:`ObjectCodec` plays the role of Java serialisation here.  It is a
deterministic, self-describing tagged binary format supporting the usual
scalar types, lists, tuples, dicts and *registered classes*.  Classes are
encoded by their registered name plus their instance ``__dict__`` (or the
value returned by an optional ``__getstate__``), and decoded by instantiating
the class without calling ``__init__`` and restoring the state -- the same
contract Java serialisation provides.

Requiring registration is what gives the TPS layer its type-safety story:
only event types the engine knows about can cross the wire, and the decoded
object is an instance of the exact registered class (so ``isinstance`` checks
and subtype matching are meaningful on the subscriber side).

Fast path
---------

Serialisation sits on the hot path of every publish (the paper's Figures
18-20 measure exactly this), so the codec *compiles a plan* per registered
class the first time an instance is encoded or decoded:

* the encode plan precomputes the object header (type tag + registered name)
  and, per observed ``__dict__`` *shape* (tuple of attribute names), the
  sorted field order with each key's full wire encoding, so steady-state
  encoding is one dict lookup plus a scalar append per field;
* the decode plan caches the resolved class and its ``__setstate__`` and
  learns the byte pattern of the encoded field keys, so steady-state decoding
  memcmp-skips the keys and writes values straight into the new instance's
  ``__dict__``.

Plans are only compiled for classes without custom ``__getstate__`` or
``__slots__``; everything else (and every container/scalar combination the
plans do not cover) falls back to the generic recursive codec.  The compiled
output is byte-for-byte identical to the generic path -- property tests in
``tests/test_codec_fastpath_properties.py`` enforce this -- so peers running
either path interoperate.  Pass ``compiled=False`` to force the generic path
(used by those tests and by the perf harness as the pre-optimisation
baseline).
"""

from __future__ import annotations

import struct
from typing import Any, Callable, Dict, List, Optional, Tuple, Type


class SerializationError(ValueError):
    """Raised when a value cannot be encoded or bytes cannot be decoded."""


class UnregisteredTypeError(SerializationError):
    """Raised when encoding or decoding an object whose class is not registered."""


# One-byte type tags of the wire format.
_T_NONE = b"N"
_T_TRUE = b"T"
_T_FALSE = b"F"
_T_INT = b"I"
_T_FLOAT = b"D"
_T_STR = b"S"
_T_BYTES = b"B"
_T_LIST = b"L"
_T_TUPLE = b"U"
_T_DICT = b"M"
_T_OBJECT = b"O"

_U32 = struct.Struct(">I")
_F64 = struct.Struct(">d")
_pack_u32 = _U32.pack
_pack_f64 = _F64.pack
_unpack_u32 = _U32.unpack_from
_unpack_f64 = _F64.unpack_from

#: ``object.__getstate__`` exists from Python 3.11 on; a class whose
#: ``__getstate__`` is exactly this default serialises its plain ``__dict__``.
_DEFAULT_GETSTATE = getattr(object, "__getstate__", None)


# --------------------------------------------------------------- fast scalars
#
# Encode handlers keyed by *exact* type: subclasses of builtins fall through
# to the generic path so their bytes stay identical to the seed codec.


def _encode_none(value: Any, out: bytearray) -> None:
    out += _T_NONE


def _encode_bool(value: Any, out: bytearray) -> None:
    out += _T_TRUE if value else _T_FALSE


def _encode_int(value: Any, out: bytearray) -> None:
    payload = str(value).encode("ascii")
    out += _T_INT
    out += _pack_u32(len(payload))
    out += payload


def _encode_float(value: Any, out: bytearray) -> None:
    out += _T_FLOAT
    out += _pack_f64(value)


def _encode_str(value: Any, out: bytearray) -> None:
    payload = value.encode("utf-8")
    out += _T_STR
    out += _pack_u32(len(payload))
    out += payload


def _encode_bytes(value: Any, out: bytearray) -> None:
    out += _T_BYTES
    out += _pack_u32(len(value))
    out += value


_SCALAR_ENCODERS: Dict[type, Callable[[Any, bytearray], None]] = {
    type(None): _encode_none,
    bool: _encode_bool,
    int: _encode_int,
    float: _encode_float,
    str: _encode_str,
    bytes: _encode_bytes,
}

#: Builtin bases a plan-encoded class must not inherit from: the generic
#: codec encodes such instances as the builtin (losing the class), so the
#: compiled path must do the same -- which it achieves by refusing the plan.
_BUILTIN_BASES = (bool, int, float, str, bytes, bytearray, list, tuple, dict)


class _EncodePlan:
    """Compiled per-class encode state: header bytes + per-shape field plans.

    ``shapes`` maps a ``__dict__`` key tuple (in instance insertion order) to
    either ``None`` (shape not plannable, e.g. non-string keys) or a pair of
    the dict-header bytes and the ``(key, encoded_key_bytes)`` sequence in
    the canonical sorted-by-repr order of the generic codec.
    """

    __slots__ = ("header", "shapes")

    def __init__(self, header: bytes) -> None:
        self.header = header
        self.shapes: Dict[Tuple[str, ...], Optional[Tuple[bytes, Tuple[Tuple[str, bytes], ...]]]] = {}


class _DecodePlan:
    """Compiled per-type decode state: class, ``__setstate__`` and key pattern.

    ``keys`` is learned from the first decoded payload: the exact wire bytes
    of each encoded field key, in stream order.  Subsequent payloads of the
    same shape skip key decoding entirely with a ``startswith`` check.
    """

    __slots__ = ("cls", "setstate", "keys")

    def __init__(self, cls: Type[Any], setstate: Optional[Callable[..., None]]) -> None:
        self.cls = cls
        self.setstate = setstate
        self.keys: Optional[Tuple[Tuple[Any, bytes], ...]] = None


class ObjectCodec:
    """Encodes and decodes Python objects to a deterministic binary format.

    Parameters
    ----------
    strict:
        When True (the default), encountering an unregistered class raises
        :class:`UnregisteredTypeError`.  When False, unregistered objects are
        encoded as plain dictionaries of their attributes (useful for the raw
        JXTA-WIRE baseline, which has no type knowledge and therefore no type
        safety -- exactly the paper's point).
    compiled:
        When True (the default), use compiled per-type encode/decode plans on
        the hot path.  When False, always run the generic recursive codec --
        the two produce byte-identical output; the flag exists for the
        property tests and the perf-harness baseline.
    """

    def __init__(self, *, strict: bool = True, compiled: bool = True) -> None:
        self.strict = strict
        self.compiled = compiled
        self._classes_by_name: Dict[str, Type[Any]] = {}
        self._names_by_class: Dict[Type[Any], str] = {}
        self._encode_plans: Dict[Type[Any], Optional[_EncodePlan]] = {}
        self._decode_plans: Dict[bytes, _DecodePlan] = {}

    # ------------------------------------------------------------ registry

    def register(self, cls: Type[Any], name: Optional[str] = None) -> Type[Any]:
        """Register a class for encoding/decoding under ``name``.

        The default name is ``module.QualifiedName``.  Registering the same
        class twice under the same name is a no-op; re-registering a name for
        a different class raises, because silently swapping types would break
        the decoder on in-flight messages.
        """
        label = name or f"{cls.__module__}.{cls.__qualname__}"
        existing = self._classes_by_name.get(label)
        if existing is not None and existing is not cls:
            raise SerializationError(
                f"type name {label!r} is already registered for {existing!r}"
            )
        self._classes_by_name[label] = cls
        self._names_by_class[cls] = label
        # The wire name feeds the compiled encode header; recompile lazily.
        self._encode_plans.pop(cls, None)
        return cls

    def is_registered(self, cls: Type[Any]) -> bool:
        """Whether the given class has been registered."""
        return cls in self._names_by_class

    def registered_name(self, cls: Type[Any]) -> Optional[str]:
        """The wire name of a registered class, or None."""
        return self._names_by_class.get(cls)

    def class_for(self, name: str) -> Optional[Type[Any]]:
        """The class registered under ``name``, or None."""
        return self._classes_by_name.get(name)

    # ------------------------------------------------------------- encoding

    def encode(self, value: Any) -> bytes:
        """Encode ``value`` to bytes."""
        out = bytearray()
        if self.compiled:
            cls = type(value)
            handler = _SCALAR_ENCODERS.get(cls)
            if handler is not None:
                handler(value, out)
                return bytes(out)
            # A plan only exists after a first generic pass compiled it, so
            # this lookup cannot bypass strict-mode registration checks.
            plan = self._encode_plans.get(cls)
            if plan is not None and self._encode_planned(value, out, plan):
                return bytes(out)
        self._encode_value(value, out)
        return bytes(out)

    def _encode_value(self, value: Any, out: bytearray) -> None:
        if value is None:
            out += _T_NONE
        elif value is True:
            out += _T_TRUE
        elif value is False:
            out += _T_FALSE
        elif isinstance(value, int):
            payload = str(value).encode("ascii")
            out += _T_INT + _pack_u32(len(payload)) + payload
        elif isinstance(value, float):
            out += _T_FLOAT + _pack_f64(value)
        elif isinstance(value, str):
            payload = value.encode("utf-8")
            out += _T_STR + _pack_u32(len(payload)) + payload
        elif isinstance(value, (bytes, bytearray)):
            out += _T_BYTES + _pack_u32(len(value)) + bytes(value)
        elif isinstance(value, list):
            out += _T_LIST + _pack_u32(len(value))
            for item in value:
                self._encode_value(item, out)
        elif isinstance(value, tuple):
            out += _T_TUPLE + _pack_u32(len(value))
            for item in value:
                self._encode_value(item, out)
        elif isinstance(value, dict):
            out += _T_DICT + _pack_u32(len(value))
            for key in sorted(value, key=repr):
                self._encode_value(key, out)
                self._encode_value(value[key], out)
        else:
            self._encode_object(value, out)

    def _object_state(self, value: Any) -> Dict[str, Any]:
        getstate = getattr(value, "__getstate__", None)
        if callable(getstate):
            state = getstate()
            if isinstance(state, dict):
                return state
        if hasattr(value, "__dict__"):
            return dict(vars(value))
        raise SerializationError(
            f"cannot extract a serialisable state from {type(value).__name__}"
        )

    def _compile_encode_plan(self, cls: Type[Any]) -> Optional[_EncodePlan]:
        """Build the encode plan for ``cls``, or None when it must stay generic."""
        name = self._names_by_class.get(cls)
        if name is None:
            return None
        if issubclass(cls, _BUILTIN_BASES):
            return None
        getstate = getattr(cls, "__getstate__", None)
        if getstate is not None and getstate is not _DEFAULT_GETSTATE:
            return None
        if any("__slots__" in vars(base) for base in cls.__mro__ if base is not object):
            return None
        name_bytes = name.encode("utf-8")
        return _EncodePlan(_T_OBJECT + _pack_u32(len(name_bytes)) + name_bytes)

    @staticmethod
    def _compile_shape(
        shape: Tuple[str, ...]
    ) -> Optional[Tuple[bytes, Tuple[Tuple[str, bytes], ...]]]:
        """Precompute the dict header and sorted key encodings for one shape."""
        if not all(type(key) is str for key in shape):
            return None
        fields = []
        for key in sorted(shape, key=repr):
            key_payload = key.encode("utf-8")
            fields.append((key, _T_STR + _pack_u32(len(key_payload)) + key_payload))
        return _T_DICT + _pack_u32(len(shape)), tuple(fields)

    def _encode_planned(self, value: Any, out: bytearray, plan: _EncodePlan) -> bool:
        """Encode ``value`` through its compiled plan; False if the instance's
        ``__dict__`` shape is not plannable (nothing is written then)."""
        state = value.__dict__
        shape = tuple(state)
        entry = plan.shapes.get(shape, False)
        if entry is False:
            entry = self._compile_shape(shape)
            plan.shapes[shape] = entry
        if entry is None:
            return False
        dict_header, fields = entry
        out += plan.header
        out += dict_header
        encoders = _SCALAR_ENCODERS
        generic = self._encode_value
        for key, key_bytes in fields:
            field_value = state[key]
            out += key_bytes
            handler = encoders.get(type(field_value))
            if handler is not None:
                handler(field_value, out)
            else:
                generic(field_value, out)
        return True

    def _encode_object(self, value: Any, out: bytearray) -> None:
        cls = type(value)
        if self.compiled:
            plan = self._encode_plans.get(cls, False)
            if plan is False:
                plan = self._compile_encode_plan(cls)
                self._encode_plans[cls] = plan
            if plan is not None and self._encode_planned(value, out, plan):
                return
        name = self._names_by_class.get(cls)
        if name is None:
            if self.strict:
                raise UnregisteredTypeError(
                    f"type {cls.__module__}.{cls.__qualname__} is not registered with this codec"
                )
            # Lenient mode: degrade to a plain dict (losing the type, exactly
            # like hand-rolled XML payloads over raw JXTA would).
            self._encode_value(self._object_state(value), out)
            return
        state = self._object_state(value)
        name_bytes = name.encode("utf-8")
        out += _T_OBJECT + _pack_u32(len(name_bytes)) + name_bytes
        self._encode_value(state, out)

    # ------------------------------------------------------------- decoding

    def decode(self, data: bytes) -> Any:
        """Decode bytes produced by :meth:`encode` back into a value."""
        if self.compiled:
            value, offset = self._decode_fast(data, 0)
        else:
            value, offset = self._decode_value(data, 0)
        if offset != len(data):
            raise SerializationError(
                f"trailing bytes after decoded value ({len(data) - offset} left)"
            )
        return value

    def _decode_fast(self, data: bytes, offset: int) -> Tuple[Any, int]:
        """Tag-indexed decoder with per-type plans; byte-equivalent to
        :meth:`_decode_value` (which it falls back to for rare tags)."""
        size = len(data)
        if offset >= size:
            raise SerializationError("truncated input")
        tag = data[offset]
        offset += 1
        if tag == 83:  # S -- str
            if offset + 4 > size:
                raise SerializationError("truncated length prefix")
            (length,) = _unpack_u32(data, offset)
            offset += 4
            end = offset + length
            if end > size:
                raise SerializationError("declared length exceeds available bytes")
            return data[offset:end].decode("utf-8"), end
        if tag == 68:  # D -- float
            if offset + 8 > size:
                raise SerializationError("truncated float")
            (value,) = _unpack_f64(data, offset)
            return value, offset + 8
        if tag == 73:  # I -- int
            if offset + 4 > size:
                raise SerializationError("truncated length prefix")
            (length,) = _unpack_u32(data, offset)
            offset += 4
            end = offset + length
            if end > size:
                raise SerializationError("declared length exceeds available bytes")
            return int(data[offset:end].decode("ascii")), end
        if tag == 79:  # O -- registered object
            return self._decode_object_fast(data, offset)
        if tag == 77:  # M -- dict
            if offset + 4 > size:
                raise SerializationError("truncated length prefix")
            (count,) = _unpack_u32(data, offset)
            offset += 4
            if offset + count > size:
                raise SerializationError("declared length exceeds available bytes")
            result: Dict[Any, Any] = {}
            decode = self._decode_fast
            for _ in range(count):
                key, offset = decode(data, offset)
                value, offset = decode(data, offset)
                result[key] = value
            return result, offset
        if tag == 78:  # N
            return None, offset
        if tag == 84:  # T
            return True, offset
        if tag == 70:  # F
            return False, offset
        if tag == 76 or tag == 85:  # L / U -- list / tuple
            if offset + 4 > size:
                raise SerializationError("truncated length prefix")
            (count,) = _unpack_u32(data, offset)
            offset += 4
            if offset + count > size:
                raise SerializationError("declared length exceeds available bytes")
            items: List[Any] = []
            decode = self._decode_fast
            for _ in range(count):
                item, offset = decode(data, offset)
                items.append(item)
            return (items if tag == 76 else tuple(items)), offset
        # Rare tags (bytes) and unknown-tag errors share the generic decoder.
        return self._decode_value(data, offset - 1)

    def _decode_object_fast(self, data: bytes, offset: int) -> Tuple[Any, int]:
        """Decode one object using (and lazily learning) its decode plan."""
        size = len(data)
        if offset + 4 > size:
            raise SerializationError("truncated length prefix")
        (length,) = _unpack_u32(data, offset)
        offset += 4
        end = offset + length
        if end > size:
            raise SerializationError("declared length exceeds available bytes")
        name_bytes = data[offset:end]
        offset = end
        plan = self._decode_plans.get(name_bytes)
        if plan is None:
            name = name_bytes.decode("utf-8")
            cls = self._classes_by_name.get(name)
            if cls is None:
                raise UnregisteredTypeError(
                    f"cannot decode object of unregistered type {name!r}"
                )
            plan = _DecodePlan(cls, getattr(cls, "__setstate__", None))
            self._decode_plans[bytes(name_bytes)] = plan
        if plan.setstate is not None or offset >= size or data[offset] != 77:
            # Custom __setstate__ or a non-dict state: decode generically.
            state, offset = self._decode_fast(data, offset)
            instance = object.__new__(plan.cls)
            if plan.setstate is not None:
                plan.setstate(instance, state)
            else:
                instance.__dict__.update(state)
            return instance, offset
        if offset + 5 > size:
            raise SerializationError("truncated length prefix")
        (count,) = _unpack_u32(data, offset + 1)
        offset += 5
        if offset + count > size:
            raise SerializationError("declared length exceeds available bytes")
        instance = object.__new__(plan.cls)
        target = instance.__dict__
        decode = self._decode_fast
        keys = plan.keys
        if keys is not None and len(keys) == count:
            entries_start = offset
            matched = True
            for key, key_bytes in keys:
                if data.startswith(key_bytes, offset):
                    offset += len(key_bytes)
                    target[key], offset = decode(data, offset)
                else:
                    matched = False
                    break
            if matched:
                return instance, offset
            # Shape drifted: rewind and relearn below.
            target.clear()
            offset = entries_start
        learned = []
        for _ in range(count):
            key_start = offset
            key, offset = decode(data, offset)
            learned.append((key, data[key_start:offset]))
            target[key], offset = decode(data, offset)
        plan.keys = tuple(learned)
        return instance, offset

    def _decode_value(self, data: bytes, offset: int) -> Tuple[Any, int]:
        if offset >= len(data):
            raise SerializationError("truncated input")
        tag = data[offset : offset + 1]
        offset += 1
        if tag == _T_NONE:
            return None, offset
        if tag == _T_TRUE:
            return True, offset
        if tag == _T_FALSE:
            return False, offset
        if tag == _T_INT:
            length, offset = self._read_length(data, offset)
            return int(data[offset : offset + length].decode("ascii")), offset + length
        if tag == _T_FLOAT:
            if offset + 8 > len(data):
                raise SerializationError("truncated float")
            (value,) = struct.unpack(">d", data[offset : offset + 8])
            return value, offset + 8
        if tag == _T_STR:
            length, offset = self._read_length(data, offset)
            return data[offset : offset + length].decode("utf-8"), offset + length
        if tag == _T_BYTES:
            length, offset = self._read_length(data, offset)
            return data[offset : offset + length], offset + length
        if tag == _T_LIST:
            count, offset = self._read_length(data, offset)
            items = []
            for _ in range(count):
                item, offset = self._decode_value(data, offset)
                items.append(item)
            return items, offset
        if tag == _T_TUPLE:
            count, offset = self._read_length(data, offset)
            items = []
            for _ in range(count):
                item, offset = self._decode_value(data, offset)
                items.append(item)
            return tuple(items), offset
        if tag == _T_DICT:
            count, offset = self._read_length(data, offset)
            result: Dict[Any, Any] = {}
            for _ in range(count):
                key, offset = self._decode_value(data, offset)
                value, offset = self._decode_value(data, offset)
                result[key] = value
            return result, offset
        if tag == _T_OBJECT:
            length, offset = self._read_length(data, offset)
            name = data[offset : offset + length].decode("utf-8")
            offset += length
            state, offset = self._decode_value(data, offset)
            cls = self._classes_by_name.get(name)
            if cls is None:
                raise UnregisteredTypeError(
                    f"cannot decode object of unregistered type {name!r}"
                )
            instance = object.__new__(cls)
            setstate = getattr(instance, "__setstate__", None)
            if callable(setstate):
                setstate(state)
            else:
                instance.__dict__.update(state)
            return instance, offset
        raise SerializationError(f"unknown type tag {tag!r} at offset {offset - 1}")

    @staticmethod
    def _read_length(data: bytes, offset: int) -> Tuple[int, int]:
        if offset + 4 > len(data):
            raise SerializationError("truncated length prefix")
        (length,) = struct.unpack(">I", data[offset : offset + 4])
        if offset + 4 + length > len(data):
            raise SerializationError("declared length exceeds available bytes")
        return length, offset + 4

    # ---------------------------------------------------------------- sizing

    def encoded_size(self, value: Any) -> int:
        """Return the number of bytes :meth:`encode` would produce."""
        return len(self.encode(value))


__all__ = ["ObjectCodec", "SerializationError", "UnregisteredTypeError"]
