"""Peer Discovery Protocol (PDP).

"The PDP allows different peers to find each other.  In fact, this protocol
allows to find any kind of published advertisements.  Without this protocol,
a peer remains alone unless it knows in advance the peers it wants to connect
to."  (paper, Section 2.2, Figure 1)

The discovery service exposes the JXTA API surface the paper's code uses in
Figures 15 and 16:

* ``publish`` / ``remote_publish`` -- store an advertisement locally and push
  it to other peers;
* ``get_remote_advertisements`` -- send a discovery query (optionally scoped
  to one peer) for advertisements matching an attribute/value pattern;
* ``get_local_advertisements`` -- search the local cache;
* ``flush_advertisements`` -- drop cached advertisements;
* ``add_discovery_listener`` -- be notified when responses arrive.

Queries and responses travel over the Peer Resolver Protocol.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, TYPE_CHECKING, Union

from repro.jxta.advertisement import (
    Advertisement,
    AdvertisementFactory,
    DEFAULT_REMOTE_LIFETIME,
)
from repro.jxta.cache import CacheManager, DiscoveryKind
from repro.jxta.ids import PeerID
from repro.jxta.resolver import ResolverQuery, ResolverResponse
from repro.serialization.xml_codec import XmlElement, XmlParseError, parse_xml, to_xml

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.jxta.peergroup import PeerGroup


@dataclass
class DiscoveryEvent:
    """Delivered to discovery listeners when remote advertisements arrive."""

    kind: int
    advertisements: List[Advertisement]
    src_peer: Optional[PeerID] = None
    query_id: str = ""


#: Listeners are callables taking a :class:`DiscoveryEvent` (objects with a
#: ``discovery_event`` method are also accepted).
DiscoveryListener = Union[Callable[[DiscoveryEvent], None], object]


class DiscoveryService:
    """Per-group advertisement discovery, caching and publication."""

    SERVICE_NAME = "jxta.service.discovery"
    HANDLER_NAME = "urn:jxta:pdp"

    #: Discovery kinds, mirroring JXTA's ``Discovery.PEER/GROUP/ADV``.
    PEER = DiscoveryKind.PEER
    GROUP = DiscoveryKind.GROUP
    ADV = DiscoveryKind.ADV

    #: Default maximum number of advertisements returned per responding peer.
    DEFAULT_THRESHOLD = 10

    def __init__(self, group: "PeerGroup") -> None:
        self.group = group
        self.peer = group.peer
        self.cache = CacheManager(self.peer.clock)
        self._listeners: List[DiscoveryListener] = []
        group.resolver.register_handler(self.HANDLER_NAME, self)

    # ------------------------------------------------------------ listeners

    def add_discovery_listener(self, listener: DiscoveryListener) -> None:
        """Register a listener for incoming discovery responses."""
        self._listeners.append(listener)

    def remove_discovery_listener(self, listener: DiscoveryListener) -> None:
        """Unregister a listener (missing listeners are ignored)."""
        if listener in self._listeners:
            self._listeners.remove(listener)

    def _notify(self, event: DiscoveryEvent) -> None:
        for listener in list(self._listeners):
            callback = getattr(listener, "discovery_event", listener)
            callback(event)

    # ----------------------------------------------------------- publishing

    def publish(
        self,
        advertisement: Advertisement,
        kind: int,
        *,
        lifetime: Optional[float] = None,
    ) -> None:
        """Store an advertisement in the local cache.

        "The first call writes the advertisement to the stable storage of the
        peer [...] in order for the peers that are looking for advertisements
        to find that peer." (paper, Section 4.4.1)
        """
        if advertisement.created_at == 0.0:
            advertisement.created_at = self.peer.now
        self.cache.publish(advertisement, kind, lifetime=lifetime, local=True)
        self.peer.metrics.counter("discovery_published").increment()

    def remote_publish(
        self,
        advertisement: Advertisement,
        kind: int,
        *,
        expiration: float = DEFAULT_REMOTE_LIFETIME,
    ) -> None:
        """Push an advertisement to other peers (unsolicited discovery response).

        "The second call sends the advertisements to the other peers via the
        standard used protocols (e.g, IP-Multicast, TCP or HTTP)."
        (paper, Section 4.4.1)
        """
        advertisement.expiration = expiration
        body = self._response_body(kind, [advertisement], query_id="push")
        self.group.resolver.send_query(self.HANDLER_NAME, body)
        self.peer.metrics.counter("discovery_remote_published").increment()

    # -------------------------------------------------------------- queries

    def get_local_advertisements(
        self,
        kind: int,
        attribute: Optional[str] = None,
        value: Optional[str] = None,
    ) -> List[Advertisement]:
        """Search the local cache (``getLocalAdvertisements`` in Figure 16)."""
        self.peer.metrics.counter("discovery_local_queries").increment()
        return self.cache.search(kind, attribute, value)

    def get_remote_advertisements(
        self,
        peer: Optional[PeerID],
        kind: int,
        attribute: Optional[str] = None,
        value: Optional[str] = None,
        threshold: int = DEFAULT_THRESHOLD,
    ) -> str:
        """Send a remote discovery query; returns the resolver query id.

        With ``peer`` set the query goes to that peer only, otherwise it is
        propagated (multicast + rendez-vous).  Responses arrive asynchronously:
        they are added to the local cache and delivered to discovery
        listeners.
        """
        DiscoveryKind.validate(kind)
        query = XmlElement("DiscoveryQuery")
        query.add("Kind", str(kind))
        query.add("Attribute", attribute or "")
        query.add("Value", value or "")
        query.add("Threshold", str(threshold))
        self.peer.metrics.counter("discovery_remote_queries").increment()
        return self.group.resolver.send_query(
            self.HANDLER_NAME, to_xml(query, declaration=False), dest_peer=peer
        )

    def flush_advertisements(self, ident: Optional[str], kind: int) -> int:
        """Drop cached advertisements of one kind (Figure 16, lines 9-11).

        ``ident`` of None flushes every advertisement of that kind; otherwise
        only the advertisement whose resource ID matches is dropped.  Returns
        the number of entries removed.
        """
        DiscoveryKind.validate(kind)
        if ident is None:
            return self.cache.flush(kind)
        removed = 0
        for entry in self.cache.entries(kind):
            rid = entry.advertisement.resource_id()
            if rid is not None and rid.to_urn() == ident:
                if self.cache.remove(entry.advertisement, kind):
                    removed += 1
        return removed

    # ----------------------------------------------------- resolver handler

    def process_query(self, query: ResolverQuery) -> Optional[str]:
        """Answer a discovery query (or absorb a pushed advertisement).

        Malformed bodies (a remote peer's bug, or hostile input) are counted
        and dropped instead of crashing the resolver dispatch loop.
        """
        try:
            element = parse_xml(query.body)
        except XmlParseError:
            self.peer.metrics.counter("discovery_malformed").increment()
            return None
        if element.name == "DiscoveryResponse":
            # remote_publish pushes advertisements as unsolicited "queries"
            # carrying a response payload; absorb them without replying.
            self._absorb_response(element, src_peer=query.src_peer, query_id=query.query_id)
            return None
        try:
            kind = int(element.child_text("Kind", str(self.ADV)))
            threshold = int(element.child_text("Threshold", str(self.DEFAULT_THRESHOLD)))
        except ValueError:
            self.peer.metrics.counter("discovery_malformed").increment()
            return None
        attribute = element.child_text("Attribute") or None
        value = element.child_text("Value") or None
        matches = self.cache.search(kind, attribute, value, limit=threshold)
        self.peer.metrics.counter("discovery_queries_served").increment()
        if not matches:
            return None
        return self._response_body(kind, matches, query_id=query.query_id)

    def process_response(self, response: ResolverResponse) -> None:
        """Handle a discovery response: cache the advertisements, notify listeners."""
        try:
            element = parse_xml(response.body)
        except XmlParseError:
            self.peer.metrics.counter("discovery_malformed").increment()
            return
        self._absorb_response(element, src_peer=response.src_peer, query_id=response.query_id)

    def _absorb_response(
        self, element: XmlElement, *, src_peer: PeerID, query_id: str
    ) -> None:
        if src_peer == self.peer.peer_id:
            return
        try:
            kind = int(element.child_text("Kind", str(self.ADV)))
        except ValueError:
            self.peer.metrics.counter("discovery_malformed").increment()
            return
        advertisements: List[Advertisement] = []
        for child in element.find_all("Adv"):
            try:
                advertisement = AdvertisementFactory.from_document(child.text)
            except Exception:
                self.peer.metrics.counter("discovery_malformed").increment()
                continue
            advertisement.created_at = self.peer.now
            advertisements.append(advertisement)
            self.cache.publish(
                advertisement, kind, lifetime=advertisement.expiration, local=False
            )
        if advertisements:
            self.peer.metrics.counter("discovery_responses_received").increment()
            self._notify(
                DiscoveryEvent(
                    kind=kind,
                    advertisements=advertisements,
                    src_peer=src_peer,
                    query_id=query_id,
                )
            )

    def _response_body(
        self, kind: int, advertisements: List[Advertisement], *, query_id: str
    ) -> str:
        response = XmlElement("DiscoveryResponse")
        response.add("Kind", str(kind))
        response.add("QueryId", query_id)
        for advertisement in advertisements:
            response.add("Adv", advertisement.to_document())
        return to_xml(response, declaration=False)


__all__ = ["DiscoveryEvent", "DiscoveryListener", "DiscoveryService"]
