"""Tests for bi-directional pipes (repro.jxta.bidipipe)."""

from __future__ import annotations

import pytest

from repro.jxta.advertisement import PipeAdvertisement
from repro.jxta.bidipipe import BidirectionalPipeListener, connect
from repro.jxta.errors import PipeError
from repro.jxta.message import Message
from repro.jxta.pipes import PipeKind


def _server_advertisement(name="bidi-service"):
    return PipeAdvertisement(name=name, pipe_kind=PipeKind.UNICAST.value)


def _establish(builder, server_peer, client_peer, advertisement=None, **listener_kwargs):
    advertisement = advertisement or _server_advertisement()
    listener = BidirectionalPipeListener(
        server_peer.world_group, advertisement, **listener_kwargs
    )
    builder.settle(rounds=2)
    pending = connect(client_peer.world_group, advertisement)
    builder.settle(rounds=4)
    return listener, pending, advertisement


class TestHandshake:
    def test_connect_establishes_a_session(self, two_peers):
        alpha, beta, builder = two_peers
        listener, pending, _adv = _establish(builder, alpha, beta)
        assert pending.established()
        assert pending.pipe.remote_peer == alpha.peer_id
        assert len(listener.sessions) == 1
        (session,) = listener.sessions.values()
        assert session.remote_peer == beta.peer_id
        assert session.session_id == pending.pipe.session_id

    def test_multiple_clients_get_separate_sessions(self, lan):
        builder = lan
        server = builder.peer_named("peer-0")
        clients = [builder.peer_named("peer-1"), builder.peer_named("peer-2")]
        advertisement = _server_advertisement()
        listener = BidirectionalPipeListener(server.world_group, advertisement)
        builder.settle(rounds=2)
        pendings = [connect(client.world_group, advertisement) for client in clients]
        builder.settle(rounds=4)
        assert all(pending.established() for pending in pendings)
        assert len(listener.sessions) == 2
        assert len({p.pipe.session_id for p in pendings}) == 2

    def test_on_session_callback(self, two_peers):
        alpha, beta, builder = two_peers
        accepted = []
        _listener, pending, _adv = _establish(
            builder, alpha, beta, on_session=accepted.append
        )
        assert len(accepted) == 1
        assert accepted[0].session_id == pending.pipe.session_id


class TestDataExchange:
    def test_bidirectional_messaging(self, two_peers):
        alpha, beta, builder = two_peers
        listener, pending, _adv = _establish(builder, alpha, beta)
        client_pipe = pending.pipe
        (server_pipe,) = listener.sessions.values()

        client_inbox, server_inbox = [], []
        client_pipe.add_listener(lambda m, sid: client_inbox.append(m.get_text("text")))
        server_pipe.add_listener(lambda m, sid: server_inbox.append(m.get_text("text")))

        client_pipe.send_text("text", "hello from the client")
        builder.settle(rounds=3)
        server_pipe.send_text("text", "hello back from the server")
        builder.settle(rounds=3)

        assert server_inbox == ["hello from the client"]
        assert client_inbox == ["hello back from the server"]
        # Framing elements are stripped from delivered messages.
        assert server_pipe.received[0].element("BidiKind") is None

    def test_sessions_are_isolated(self, lan):
        builder = lan
        server = builder.peer_named("peer-0")
        client_a = builder.peer_named("peer-1")
        client_b = builder.peer_named("peer-2")
        advertisement = _server_advertisement()
        listener = BidirectionalPipeListener(server.world_group, advertisement)
        builder.settle(rounds=2)
        pending_a = connect(client_a.world_group, advertisement)
        pending_b = connect(client_b.world_group, advertisement)
        builder.settle(rounds=4)
        pending_a.pipe.send_text("text", "from A")
        builder.settle(rounds=3)
        session_a = listener.sessions[pending_a.pipe.session_id]
        session_b = listener.sessions[pending_b.pipe.session_id]
        assert [m.get_text("text") for m in session_a.received] == ["from A"]
        assert session_b.received == []
        # Replies go only to the right client.
        session_a.send_text("text", "ack A")
        builder.settle(rounds=3)
        assert [m.get_text("text") for m in pending_a.pipe.received] == ["ack A"]
        assert pending_b.pipe.received == []


class TestClosing:
    def test_client_close_notifies_server(self, two_peers):
        alpha, beta, builder = two_peers
        listener, pending, _adv = _establish(builder, alpha, beta)
        session_id = pending.pipe.session_id
        pending.pipe.close()
        builder.settle(rounds=3)
        assert pending.pipe.closed
        assert session_id not in listener.sessions
        with pytest.raises(PipeError):
            pending.pipe.send(Message())

    def test_listener_close_shuts_sessions(self, two_peers):
        alpha, beta, builder = two_peers
        listener, pending, _adv = _establish(builder, alpha, beta)
        listener.close()
        builder.settle(rounds=3)
        assert listener.closed
        assert listener.sessions == {}
        assert pending.pipe.closed

    def test_connect_before_listener_exists_eventually_succeeds(self, two_peers):
        alpha, beta, builder = two_peers
        advertisement = _server_advertisement()
        # The client connects first; the CONNECT is retried on the sim clock.
        pending = connect(beta.world_group, advertisement)
        builder.settle(rounds=1)
        BidirectionalPipeListener(alpha.world_group, advertisement)
        builder.settle(rounds=6)
        assert pending.established()


class TestMalformedConnect:
    def test_garbage_return_advertisement_is_dropped(self, two_peers):
        """A connect message whose return advertisement does not parse must
        be counted and dropped, not crash message dispatch."""
        from repro.jxta import bidipipe

        alpha, beta, builder = two_peers
        listener = BidirectionalPipeListener(alpha.world_group, _server_advertisement())
        builder.settle(rounds=2)
        for bad_document in ("<not xml", "", '<?xml version="1.0"?><X type="jxta:Nope"/>'):
            message = Message()
            message.add(bidipipe._KIND, bidipipe._CONNECT)
            message.add(bidipipe._SESSION, f"sess-{bad_document!r}")
            message.add(bidipipe._RETURN_ADV, bad_document)
            listener._on_message(message, beta.peer_id)
        assert listener.sessions == {}
        assert alpha.metrics.counters().get("bidi_malformed_connect", 0) >= 3
