"""JXTA messages.

A JXTA message is an ordered bag of named elements, each with an optional
namespace and a MIME type, carrying either text or bytes.  Services
communicate by adding elements to a message, handing it to the endpoint (or a
pipe), and reading elements back out on the receiving side.

Messages serialise to a compact binary envelope via the shared object codec;
the serialised size is what the network and the cost model account, so padding
a message (as the benchmarks do to reach the paper's 1910-byte message size)
genuinely affects simulated transmission and serialisation costs.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Union

from repro.serialization.object_codec import ObjectCodec

#: Codec used for message envelopes (plain containers only -- no registration needed).
_ENVELOPE_CODEC = ObjectCodec(strict=True)

_message_counter = itertools.count(1)


@dataclass
class MessageElement:
    """One named element inside a message.

    Attributes
    ----------
    name:
        Element name (unique per namespace by convention, not enforced --
        JXTA allows repeated elements).
    content:
        Either text (``str``) or raw bytes.
    namespace:
        Namespace string; the empty string is the default namespace.
    mime_type:
        Informational MIME type (``text/plain``, ``application/octet-stream``...).
    """

    name: str
    content: Union[str, bytes]
    namespace: str = ""
    mime_type: str = "text/plain"

    @property
    def qualified_name(self) -> str:
        """``namespace:name`` (or just ``name`` for the default namespace)."""
        return f"{self.namespace}:{self.name}" if self.namespace else self.name

    @property
    def as_bytes(self) -> bytes:
        """The content as bytes (text is UTF-8 encoded)."""
        if isinstance(self.content, bytes):
            return self.content
        return self.content.encode("utf-8")

    @property
    def as_text(self) -> str:
        """The content as text (bytes are UTF-8 decoded)."""
        if isinstance(self.content, str):
            return self.content
        return self.content.decode("utf-8")

    @property
    def size(self) -> int:
        """Size of the content in bytes."""
        return len(self.as_bytes)


class Message:
    """An ordered collection of :class:`MessageElement` objects.

    The class mirrors the small API surface the paper's code uses: adding
    elements, reading them back, duplicating a message before re-sending it
    (``msg.dup()`` in Figure 17), and serialising it for the wire.
    """

    def __init__(self, elements: Optional[List[MessageElement]] = None) -> None:
        self._elements: List[MessageElement] = list(elements or [])
        self.message_number = next(_message_counter)

    # --------------------------------------------------------------- editing

    def add_element(self, element: MessageElement) -> None:
        """Append an element to the message."""
        self._elements.append(element)

    def add(
        self,
        name: str,
        content: Union[str, bytes],
        *,
        namespace: str = "",
        mime_type: Optional[str] = None,
    ) -> MessageElement:
        """Create, append and return an element."""
        if mime_type is None:
            mime_type = "text/plain" if isinstance(content, str) else "application/octet-stream"
        element = MessageElement(
            name=name, content=content, namespace=namespace, mime_type=mime_type
        )
        self.add_element(element)
        return element

    def remove(self, name: str, *, namespace: str = "") -> bool:
        """Remove the first element with the given name; return whether one was removed."""
        for index, element in enumerate(self._elements):
            if element.name == name and element.namespace == namespace:
                del self._elements[index]
                return True
        return False

    # -------------------------------------------------------------- querying

    def __len__(self) -> int:
        return len(self._elements)

    def __iter__(self) -> Iterator[MessageElement]:
        return iter(self._elements)

    def element(self, name: str, *, namespace: str = "") -> Optional[MessageElement]:
        """Return the first element with the given name (and namespace), or None."""
        for element in self._elements:
            if element.name == name and element.namespace == namespace:
                return element
        return None

    def elements(self, name: Optional[str] = None, *, namespace: str = "") -> List[MessageElement]:
        """Return every element, optionally filtered by name and namespace."""
        if name is None:
            return list(self._elements)
        return [e for e in self._elements if e.name == name and e.namespace == namespace]

    def get_text(self, name: str, default: str = "", *, namespace: str = "") -> str:
        """Text content of the first matching element, or ``default``."""
        element = self.element(name, namespace=namespace)
        return element.as_text if element is not None else default

    def get_bytes(self, name: str, default: bytes = b"", *, namespace: str = "") -> bytes:
        """Byte content of the first matching element, or ``default``."""
        element = self.element(name, namespace=namespace)
        return element.as_bytes if element is not None else default

    def has(self, name: str, *, namespace: str = "") -> bool:
        """Whether an element with the given name exists."""
        return self.element(name, namespace=namespace) is not None

    @property
    def size(self) -> int:
        """Total content size of all elements, in bytes."""
        return sum(element.size for element in self._elements)

    # ------------------------------------------------------------ duplication

    def dup(self) -> "Message":
        """Return a deep copy of the message (as JXTA requires before re-sending)."""
        copy = Message(
            [
                MessageElement(
                    name=e.name,
                    content=e.content,
                    namespace=e.namespace,
                    mime_type=e.mime_type,
                )
                for e in self._elements
            ]
        )
        return copy

    # ----------------------------------------------------------- wire format

    def to_bytes(self) -> bytes:
        """Serialise the message (element order is preserved)."""
        payload = [
            {
                "name": e.name,
                "namespace": e.namespace,
                "mime_type": e.mime_type,
                "text": e.content if isinstance(e.content, str) else None,
                "data": e.content if isinstance(e.content, bytes) else None,
            }
            for e in self._elements
        ]
        return _ENVELOPE_CODEC.encode(payload)

    @classmethod
    def from_bytes(cls, data: bytes) -> "Message":
        """Reconstruct a message serialised by :meth:`to_bytes`."""
        payload = _ENVELOPE_CODEC.decode(data)
        elements = []
        for entry in payload:
            content = entry["text"] if entry["text"] is not None else entry["data"]
            elements.append(
                MessageElement(
                    name=entry["name"],
                    content=content,
                    namespace=entry["namespace"],
                    mime_type=entry["mime_type"],
                )
            )
        return cls(elements)

    def pad_to(self, target_size: int, *, name: str = "padding") -> None:
        """Add a filler element so the serialised content reaches ``target_size`` bytes.

        The paper's measurements use 1910-byte messages; the benchmark harness
        pads every published event to that size so serialisation and
        transmission costs match the paper's setting.
        """
        deficit = target_size - self.size
        if deficit > 0:
            self.add(name, b"\x00" * deficit, mime_type="application/octet-stream")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        names = ",".join(e.qualified_name for e in self._elements)
        return f"Message(#{self.message_number} [{names}])"


__all__ = ["Message", "MessageElement"]
