"""JXTA advertisements.

"When a new resource (peer, pipe, peergroup, service) is available, a new
advertisement is published in order for the other peers to know this
resource.  An advertisement is a XML message that provides information about
the resource.  Each advertisement encompasses an age to distinguish stale
advertisements from new ones."  (paper, Section 2.1)

This module provides the advertisement classes the paper's code manipulates
(Figures 15-17): :class:`PipeAdvertisement`, :class:`PeerGroupAdvertisement`,
:class:`ServiceAdvertisement`, plus :class:`PeerAdvertisement` and
:class:`ModuleAdvertisement` used by the substrate itself, and the
:class:`AdvertisementFactory` used to instantiate them by type name.

Every advertisement serialises to and parses from XML through the codec in
:mod:`repro.serialization.xml_codec`.
"""

from __future__ import annotations

from typing import Any, Callable, ClassVar, Dict, List, Optional, Type

from repro.jxta.errors import AdvertisementError
from repro.jxta.ids import JxtaID, ModuleID, PeerGroupID, PeerID, PipeID
from repro.serialization.xml_codec import XmlElement, XmlParseError, parse_xml, to_xml

#: Default advertisement lifetime (seconds of virtual time) in the local cache.
DEFAULT_LIFETIME = 7 * 24 * 3600.0
#: Default lifetime advertised to remote peers.
DEFAULT_REMOTE_LIFETIME = 2 * 3600.0


class Advertisement:
    """Base class of all advertisements.

    Subclasses override :meth:`to_xml_element` / :meth:`populate_from_xml` and
    declare their ``advertisement_type`` (the JXTA-style ``jxta:XXX`` string
    used by the factory and by discovery queries).
    """

    advertisement_type: ClassVar[str] = "jxta:Adv"

    def __init__(self, *, name: str = "", created_at: float = 0.0) -> None:
        self.name = name
        #: Virtual time at which the advertisement was created; the cache uses
        #: it to compute ages and expire stale advertisements.
        self.created_at = created_at
        #: Lifetime (seconds) in the publisher's local cache.
        self.lifetime = DEFAULT_LIFETIME
        #: Lifetime (seconds) granted to remote caches.
        self.expiration = DEFAULT_REMOTE_LIFETIME

    # ------------------------------------------------------------------ age

    def age(self, now: float) -> float:
        """Age in seconds at virtual time ``now``."""
        return max(0.0, now - self.created_at)

    def expired(self, now: float, *, remote: bool = False) -> bool:
        """Whether the advertisement has outlived its (local or remote) lifetime."""
        limit = self.expiration if remote else self.lifetime
        return self.age(now) > limit

    # ------------------------------------------------------------------ id

    def resource_id(self) -> Optional[JxtaID]:
        """The ID of the resource this advertisement describes (None if unset)."""
        return None

    def unique_key(self) -> str:
        """Key used by caches to de-duplicate advertisements.

        Defaults to the resource ID URN when available, otherwise the
        advertisement type plus name.
        """
        rid = self.resource_id()
        if rid is not None:
            return rid.to_urn()
        return f"{self.advertisement_type}:{self.name}"

    # ------------------------------------------------------------------ xml

    def to_xml_element(self) -> XmlElement:
        """Render the advertisement as an XML element tree."""
        element = XmlElement(self.advertisement_type.replace(":", "."))
        element.set_attribute("type", self.advertisement_type)
        if self.name:
            element.add("Name", self.name)
        element.add("Expiration", str(self.expiration))
        return element

    def populate_from_xml(self, element: XmlElement) -> None:
        """Fill this advertisement's fields from a parsed XML element."""
        self.name = element.child_text("Name", self.name)
        expiration = element.child_text("Expiration")
        if expiration:
            self.expiration = float(expiration)

    def to_document(self) -> str:
        """Serialise to a full XML document string."""
        return to_xml(self.to_xml_element())

    @property
    def document_size(self) -> int:
        """Size in bytes of the XML document form (used for cost accounting)."""
        return len(self.to_document().encode("utf-8"))

    def matches(self, attribute: Optional[str], value: Optional[str]) -> bool:
        """Whether the advertisement matches a discovery query.

        Discovery queries carry an attribute name and a value; the value may
        end with ``*`` for prefix matching, as used by the paper's
        ``AdvertisementsFinder`` (``"Name", prefix + "*"``).  A query with no
        attribute matches everything.
        """
        if not attribute:
            return True
        actual = self._attribute_value(attribute)
        if actual is None:
            return False
        if value is None:
            return True
        if value.endswith("*"):
            return actual.startswith(value[:-1])
        return actual == value

    def _attribute_value(self, attribute: str) -> Optional[str]:
        """The string value of a queryable attribute (subclasses may extend)."""
        if attribute.lower() == "name":
            return self.name
        rid = self.resource_id()
        if attribute.lower() in ("id", "gid", "pid") and rid is not None:
            return rid.to_urn()
        return None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}(name={self.name!r})"


class PeerAdvertisement(Advertisement):
    """Describes a peer: its ID, name, group and network endpoints."""

    advertisement_type = "jxta:PA"

    def __init__(
        self,
        *,
        peer_id: Optional[PeerID] = None,
        group_id: Optional[PeerGroupID] = None,
        name: str = "",
        endpoints: Optional[List[str]] = None,
        is_rendezvous: bool = False,
        is_router: bool = False,
        created_at: float = 0.0,
    ) -> None:
        super().__init__(name=name, created_at=created_at)
        self.peer_id = peer_id or PeerID()
        self.group_id = group_id or PeerGroupID()
        #: Network endpoint descriptors, e.g. ``"tcp://host-3"``.
        self.endpoints: List[str] = list(endpoints or [])
        self.is_rendezvous = is_rendezvous
        self.is_router = is_router

    def resource_id(self) -> PeerID:
        return self.peer_id

    def to_xml_element(self) -> XmlElement:
        element = super().to_xml_element()
        element.add("PID", self.peer_id.to_urn())
        element.add("GID", self.group_id.to_urn())
        element.add("Rdv", "true" if self.is_rendezvous else "false")
        element.add("Router", "true" if self.is_router else "false")
        endpoints = element.add("Endpoints")
        for endpoint in self.endpoints:
            endpoints.add("Endpoint", endpoint)
        return element

    def populate_from_xml(self, element: XmlElement) -> None:
        super().populate_from_xml(element)
        self.peer_id = PeerID.from_urn(element.child_text("PID"))
        self.group_id = PeerGroupID.from_urn(element.child_text("GID"))
        self.is_rendezvous = element.child_text("Rdv") == "true"
        self.is_router = element.child_text("Router") == "true"
        endpoints = element.find("Endpoints")
        self.endpoints = (
            [child.text for child in endpoints.find_all("Endpoint")] if endpoints else []
        )

    def _attribute_value(self, attribute: str) -> Optional[str]:
        if attribute.lower() == "pid":
            return self.peer_id.to_urn()
        if attribute.lower() == "gid":
            return self.group_id.to_urn()
        return super()._attribute_value(attribute)


class PipeAdvertisement(Advertisement):
    """Describes a pipe: its ID, name and kind (unicast / propagate / wire)."""

    advertisement_type = "jxta:PipeAdvertisement"

    def __init__(
        self,
        *,
        pipe_id: Optional[PipeID] = None,
        name: str = "",
        pipe_kind: str = "JxtaUnicast",
        created_at: float = 0.0,
    ) -> None:
        super().__init__(name=name, created_at=created_at)
        self.pipe_id = pipe_id or PipeID()
        self.pipe_kind = pipe_kind

    def resource_id(self) -> PipeID:
        return self.pipe_id

    # JXTA's setters, kept with pythonic names plus thin aliases used by code
    # transliterated from the paper's figures.
    def set_pipe_id(self, pipe_id: PipeID) -> None:
        """Set the pipe ID (``pipeAdv.setPipeID(...)`` in Figure 15)."""
        self.pipe_id = pipe_id

    def set_name(self, name: str) -> None:
        """Set the pipe name (``pipeAdv.setName(...)`` in Figure 15)."""
        self.name = name

    def to_xml_element(self) -> XmlElement:
        element = super().to_xml_element()
        element.add("Id", self.pipe_id.to_urn())
        element.add("Type", self.pipe_kind)
        return element

    def populate_from_xml(self, element: XmlElement) -> None:
        super().populate_from_xml(element)
        self.pipe_id = PipeID.from_urn(element.child_text("Id"))
        self.pipe_kind = element.child_text("Type", self.pipe_kind)


class ServiceAdvertisement(Advertisement):
    """Describes a service hosted inside a peer group (Figure 15, lines 27-44).

    The paper's code configures the WIRE service advertisement with a name,
    version, URI, code, security level, keywords, parameters and the pipe
    advertisement the service communicates over; all of those fields exist
    here.
    """

    advertisement_type = "jxta:ServiceAdvertisement"

    def __init__(
        self,
        *,
        name: str = "",
        version: str = "1.0",
        uri: str = "",
        code: str = "",
        security: str = "none",
        keywords: str = "",
        pipe: Optional[PipeAdvertisement] = None,
        params: Optional[List[str]] = None,
        created_at: float = 0.0,
    ) -> None:
        super().__init__(name=name, created_at=created_at)
        self.version = version
        self.uri = uri
        self.code = code
        self.security = security
        self.keywords = keywords
        self.pipe = pipe
        self.params: List[str] = list(params or [])

    # JXTA-style setters used by transliterations of Figure 15.
    def set_name(self, name: str) -> None:
        """Set the service name."""
        self.name = name

    def set_version(self, version: str) -> None:
        """Set the service version string."""
        self.version = version

    def set_uri(self, uri: str) -> None:
        """Set the service URI."""
        self.uri = uri

    def set_code(self, code: str) -> None:
        """Set the service implementation code reference."""
        self.code = code

    def set_security(self, security: str) -> None:
        """Set the service security descriptor."""
        self.security = security

    def set_keywords(self, keywords: str) -> None:
        """Set the service keywords."""
        self.keywords = keywords

    def set_pipe(self, pipe: PipeAdvertisement) -> None:
        """Attach the pipe advertisement the service communicates over."""
        self.pipe = pipe

    def get_pipe(self) -> Optional[PipeAdvertisement]:
        """The attached pipe advertisement, if any."""
        return self.pipe

    def get_params(self) -> List[str]:
        """The service parameter list (``r.getParams()`` in Figure 15)."""
        return self.params

    def set_params(self, params: List[str]) -> None:
        """Replace the service parameter list."""
        self.params = list(params)

    def unique_key(self) -> str:
        return f"{self.advertisement_type}:{self.name}:{self.version}"

    def to_xml_element(self) -> XmlElement:
        element = super().to_xml_element()
        element.add("Version", self.version)
        element.add("Uri", self.uri)
        element.add("Code", self.code)
        element.add("Security", self.security)
        element.add("Keywords", self.keywords)
        params = element.add("Params")
        for param in self.params:
            params.add("Param", param)
        if self.pipe is not None:
            element.add_child(self.pipe.to_xml_element())
        return element

    def populate_from_xml(self, element: XmlElement) -> None:
        super().populate_from_xml(element)
        self.version = element.child_text("Version", self.version)
        self.uri = element.child_text("Uri", self.uri)
        self.code = element.child_text("Code", self.code)
        self.security = element.child_text("Security", self.security)
        self.keywords = element.child_text("Keywords", self.keywords)
        params = element.find("Params")
        self.params = [child.text for child in params.find_all("Param")] if params else []
        pipe_xml = element.find(PipeAdvertisement.advertisement_type.replace(":", "."))
        if pipe_xml is not None:
            pipe = PipeAdvertisement()
            pipe.populate_from_xml(pipe_xml)
            self.pipe = pipe


class PeerGroupAdvertisement(Advertisement):
    """Describes a peer group and the services it hosts (Figure 15, lines 16-44)."""

    advertisement_type = "jxta:PGA"

    def __init__(
        self,
        *,
        group_id: Optional[PeerGroupID] = None,
        creator_peer_id: Optional[PeerID] = None,
        name: str = "",
        description: str = "",
        app: str = "",
        group_impl: str = "",
        is_rendezvous: bool = False,
        membership_password: Optional[str] = None,
        created_at: float = 0.0,
    ) -> None:
        super().__init__(name=name, created_at=created_at)
        self.group_id = group_id or PeerGroupID()
        self.creator_peer_id = creator_peer_id
        self.description = description
        self.app = app
        self.group_impl = group_impl
        self.is_rendezvous = is_rendezvous
        #: Optional password required by the Peer Membership Protocol to join.
        self.membership_password = membership_password
        self._services: Dict[str, ServiceAdvertisement] = {}

    def resource_id(self) -> PeerGroupID:
        return self.group_id

    # JXTA-style accessors used by the paper's AdvertisementsCreator (Fig. 15).
    def set_pid(self, peer_id: PeerID | str) -> None:
        """Record the creating peer's ID."""
        if isinstance(peer_id, str):
            peer_id = PeerID.from_urn(peer_id)
        self.creator_peer_id = peer_id

    def get_pid(self) -> Optional[PeerID]:
        """The creating peer's ID."""
        return self.creator_peer_id

    def set_gid(self, group_id: PeerGroupID | str) -> None:
        """Set the group's ID."""
        if isinstance(group_id, str):
            group_id = PeerGroupID.from_urn(group_id)
        self.group_id = group_id

    def get_gid(self) -> PeerGroupID:
        """The group's ID (``peerGAdv.getGid()`` in Figure 16)."""
        return self.group_id

    def set_name(self, name: str) -> None:
        """Set the group's name."""
        self.name = name

    def set_app(self, app: str) -> None:
        """Set the group's application descriptor."""
        self.app = app

    def get_app(self) -> str:
        """The group's application descriptor."""
        return self.app

    def set_group_impl(self, group_impl: str) -> None:
        """Set the group implementation descriptor."""
        self.group_impl = group_impl

    def get_group_impl(self) -> str:
        """The group implementation descriptor."""
        return self.group_impl

    def set_is_rendezvous(self, value: bool) -> None:
        """Mark whether members should act as rendez-vous for this group."""
        self.is_rendezvous = value

    def get_service_advertisements(self) -> Dict[str, ServiceAdvertisement]:
        """The services hosted by the group, keyed by service name."""
        return dict(self._services)

    def set_service_advertisements(self, services: Dict[str, ServiceAdvertisement]) -> None:
        """Replace the group's service advertisement table."""
        self._services = dict(services)

    def add_service(self, name: str, service: ServiceAdvertisement) -> None:
        """Add one service advertisement under ``name``."""
        self._services[name] = service

    def service(self, name: str) -> Optional[ServiceAdvertisement]:
        """Look up a hosted service advertisement by name."""
        return self._services.get(name)

    def _attribute_value(self, attribute: str) -> Optional[str]:
        if attribute.lower() == "gid":
            return self.group_id.to_urn()
        if attribute.lower() == "desc":
            return self.description
        return super()._attribute_value(attribute)

    def to_xml_element(self) -> XmlElement:
        element = super().to_xml_element()
        element.add("GID", self.group_id.to_urn())
        if self.creator_peer_id is not None:
            element.add("PID", self.creator_peer_id.to_urn())
        element.add("Desc", self.description)
        element.add("App", self.app)
        element.add("GroupImpl", self.group_impl)
        element.add("Rdv", "true" if self.is_rendezvous else "false")
        if self.membership_password is not None:
            element.add("MembershipPassword", self.membership_password)
        services = element.add("Services")
        for name, service in sorted(self._services.items()):
            wrapper = services.add("Service", name=name)
            wrapper.add_child(service.to_xml_element())
        return element

    def populate_from_xml(self, element: XmlElement) -> None:
        super().populate_from_xml(element)
        self.group_id = PeerGroupID.from_urn(element.child_text("GID"))
        pid = element.child_text("PID")
        self.creator_peer_id = PeerID.from_urn(pid) if pid else None
        self.description = element.child_text("Desc", self.description)
        self.app = element.child_text("App", self.app)
        self.group_impl = element.child_text("GroupImpl", self.group_impl)
        self.is_rendezvous = element.child_text("Rdv") == "true"
        password = element.find("MembershipPassword")
        self.membership_password = password.text if password is not None else None
        services_xml = element.find("Services")
        self._services = {}
        if services_xml is not None:
            for wrapper in services_xml.find_all("Service"):
                if not wrapper.children:
                    continue
                service = ServiceAdvertisement()
                service.populate_from_xml(wrapper.children[0])
                self._services[wrapper.attributes.get("name", service.name)] = service


class ModuleAdvertisement(Advertisement):
    """Describes a loadable module (service implementation)."""

    advertisement_type = "jxta:MIA"

    def __init__(
        self,
        *,
        module_id: Optional[ModuleID] = None,
        name: str = "",
        description: str = "",
        provider: str = "",
        created_at: float = 0.0,
    ) -> None:
        super().__init__(name=name, created_at=created_at)
        self.module_id = module_id or ModuleID()
        self.description = description
        self.provider = provider

    def resource_id(self) -> ModuleID:
        return self.module_id

    def to_xml_element(self) -> XmlElement:
        element = super().to_xml_element()
        element.add("MID", self.module_id.to_urn())
        element.add("Desc", self.description)
        element.add("Provider", self.provider)
        return element

    def populate_from_xml(self, element: XmlElement) -> None:
        super().populate_from_xml(element)
        self.module_id = ModuleID.from_urn(element.child_text("MID"))
        self.description = element.child_text("Desc", self.description)
        self.provider = element.child_text("Provider", self.provider)


class AdvertisementFactory:
    """Creates advertisements by type name and parses XML documents.

    Mirrors JXTA's ``AdvertisementFactory.newAdvertisement(type)`` used
    throughout Figure 15.
    """

    _registry: ClassVar[Dict[str, Type[Advertisement]]] = {}

    @classmethod
    def register(cls, advertisement_class: Type[Advertisement]) -> Type[Advertisement]:
        """Register an advertisement class under its ``advertisement_type``."""
        cls._registry[advertisement_class.advertisement_type] = advertisement_class
        return advertisement_class

    @classmethod
    def new_advertisement(cls, advertisement_type: str, **kwargs: Any) -> Advertisement:
        """Instantiate an empty advertisement of the given type."""
        target = cls._registry.get(advertisement_type)
        if target is None:
            raise AdvertisementError(f"unknown advertisement type {advertisement_type!r}")
        return target(**kwargs)

    @classmethod
    def known_types(cls) -> List[str]:
        """All registered advertisement type names."""
        return sorted(cls._registry)

    @classmethod
    def from_document(cls, document: str) -> Advertisement:
        """Parse an XML document into the corresponding advertisement object.

        Raises :class:`AdvertisementError` for malformed XML as well as for
        unknown types, so callers on the receive path have a single error
        contract for untrusted documents.
        """
        try:
            element = parse_xml(document)
        except XmlParseError as error:
            raise AdvertisementError(f"malformed advertisement document: {error}") from error
        type_name = element.attributes.get("type", "")
        target = cls._registry.get(type_name)
        if target is None:
            raise AdvertisementError(f"document advertises unknown type {type_name!r}")
        advertisement = target()
        advertisement.populate_from_xml(element)
        return advertisement


for _cls in (
    Advertisement,
    PeerAdvertisement,
    PipeAdvertisement,
    ServiceAdvertisement,
    PeerGroupAdvertisement,
    ModuleAdvertisement,
):
    AdvertisementFactory.register(_cls)


__all__ = [
    "Advertisement",
    "AdvertisementFactory",
    "DEFAULT_LIFETIME",
    "DEFAULT_REMOTE_LIFETIME",
    "ModuleAdvertisement",
    "PeerAdvertisement",
    "PeerGroupAdvertisement",
    "PipeAdvertisement",
    "ServiceAdvertisement",
]
