"""Tests for the paper's 'future work' extensions: XML type descriptions and replies."""

from __future__ import annotations

import pytest

from repro.apps.skirental.types import PremiumSkiRental, RentalOffer, SkiRental
from repro.core import TPSConfig, TPSEngine
from repro.core.exceptions import PSException
from repro.core.reply import Reply, ReplyEndpoint, Replyable, reply
from repro.core.type_registry import type_name
from repro.core.xml_types import (
    DynamicEvent,
    XmlEventCodec,
    XmlTypeDescription,
    describe_type,
)


class TestXmlTypeDescriptions:
    def test_describe_type_from_sample(self):
        offer = SkiRental("shop", 99.0, "Salomon", 7.0)
        description = describe_type(SkiRental, sample=offer)
        assert description.name == type_name(SkiRental)
        assert type_name(RentalOffer) in description.parents
        assert description.fields["shop"] == "str"
        assert description.fields["price"] == "float"

    def test_describe_type_sample_mismatch_rejected(self):
        with pytest.raises(PSException):
            describe_type(SkiRental, sample=RentalOffer("s", 1.0, 1))

    def test_description_xml_round_trip(self):
        description = XmlTypeDescription(
            name="a.B", parents=["a.A"], fields={"x": "int", "y": "str"}
        )
        restored = XmlTypeDescription.from_xml_element(description.to_xml_element())
        assert restored == description
        assert restored.lineage() == ["a.B", "a.A"]

    def test_non_scalar_fields_rejected(self):
        premium = PremiumSkiRental("s", 1.0, "b", 1, extras=("boots",))
        with pytest.raises(PSException):
            describe_type(PremiumSkiRental, sample=premium)

    def test_codec_round_trip_with_known_type(self):
        codec = XmlEventCodec()
        codec.register(SkiRental)
        offer = SkiRental("shop", 45.0, "Head", 3.0)
        restored = codec.decode(codec.encode(offer))
        assert isinstance(restored, SkiRental)
        assert restored == offer

    def test_codec_produces_dynamic_event_for_unknown_type(self):
        encoder = XmlEventCodec()
        offer = SkiRental("shop", 45.0, "Head", 3.0)
        payload = encoder.encode(offer)
        decoder = XmlEventCodec()  # knows nothing about SkiRental
        event = decoder.decode(payload)
        assert isinstance(event, DynamicEvent)
        assert event.type_name == type_name(SkiRental)
        assert event.price == 45.0
        assert event["brand"] == "Head"
        assert len(event) == 4
        with pytest.raises(AttributeError):
            _ = event.nonexistent

    def test_dynamic_event_conforms_to_hierarchy(self):
        payload = XmlEventCodec().encode(SkiRental("shop", 45.0, "Head", 3.0))
        event = XmlEventCodec().decode(payload)
        assert event.conforms_to("SkiRental")
        assert event.conforms_to(type_name(RentalOffer))
        assert event.conforms_to("RentalOffer")
        assert not event.conforms_to("SnowboardRental")

    def test_decode_malformed_payload_rejected(self):
        with pytest.raises(Exception):
            XmlEventCodec().decode(b"<NotAnEvent/>")

    def test_known_type_names(self):
        codec = XmlEventCodec()
        codec.register(SkiRental, "Ski")
        assert codec.known_type_names() == ["Ski"]


class ReplyableOffer(SkiRental, Replyable):
    """A ski-rental offer whose publisher accepts direct responses."""


class TestReplyChannel:
    def test_reply_flow_end_to_end(self, lan):
        builder = lan
        shop_peer = builder.peer_named("peer-0")
        shopper_peer = builder.peer_named("peer-1")

        publisher = TPSEngine(
            ReplyableOffer, peer=shop_peer, config=TPSConfig(search_timeout=2.0)
        ).new_interface("JXTA")
        builder.settle(rounds=8)
        subscriber = TPSEngine(
            ReplyableOffer,
            peer=shopper_peer,
            config=TPSConfig(search_timeout=6.0, create_if_missing=False),
        ).new_interface("JXTA")
        inbox = []
        subscriber.subscribe(inbox.append)
        builder.settle(rounds=12)

        endpoint = ReplyEndpoint(shop_peer)
        builder.settle(rounds=4)
        offer = endpoint.attach(ReplyableOffer("XTremShop", 80.0, "Salomon", 7.0))
        receipt = publisher.publish(offer)
        builder.simulator.run_until(max(builder.simulator.now, receipt.completion_time))
        builder.settle(rounds=8)

        assert len(inbox) == 1
        received = inbox[0]
        assert received.accepts_replies()
        assert reply(shopper_peer, received, {"answer": "I will take them", "days": 7})
        builder.settle(rounds=6)

        assert len(endpoint.replies) == 1
        response = endpoint.replies[0]
        assert isinstance(response, Reply)
        assert response.responder == shopper_peer.peer_id
        assert response.body["answer"] == "I will take them"
        assert endpoint.replies_for(offer) == [response]

    def test_attach_requires_replyable_event(self, lan):
        builder = lan
        endpoint = ReplyEndpoint(builder.peer_named("peer-0"))
        with pytest.raises(PSException):
            endpoint.attach(SkiRental("s", 1.0, "b", 1))

    def test_reply_without_address_rejected(self, lan):
        builder = lan
        shopper = builder.peer_named("peer-1")
        with pytest.raises(PSException):
            reply(shopper, ReplyableOffer("s", 1.0, "b", 1), "hello")

    def test_replies_for_unattached_event_is_empty(self, lan):
        builder = lan
        endpoint = ReplyEndpoint(builder.peer_named("peer-0"))
        assert endpoint.replies_for(ReplyableOffer("s", 1.0, "b", 1)) == []

    def test_closed_endpoint_stops_collecting(self, lan):
        builder = lan
        shop_peer = builder.peer_named("peer-0")
        shopper_peer = builder.peer_named("peer-1")
        endpoint = ReplyEndpoint(shop_peer)
        builder.settle(rounds=4)
        offer = endpoint.attach(ReplyableOffer("s", 1.0, "b", 1))
        endpoint.close()
        builder.settle(rounds=2)
        shopper_peer.endpoint.learn_address(shop_peer.peer_id, shop_peer.node.address)
        reply(shopper_peer, offer, "too late")
        builder.settle(rounds=4)
        assert endpoint.replies == []
