"""The ``"SHARDED"`` binding: an N-shard in-process bus.

The ROADMAP's sharding direction, taken through the public binding registry
(no special case anywhere in :mod:`repro.core.engine`): a
:class:`ShardedLocalBus` partitions engines across N independent
:class:`~repro.core.local_engine.LocalBus` shards by a stable hash of the
engine's *hierarchy root* name.  TPS routing is entirely intra-hierarchy --
an event published on one hierarchy can only ever reach engines of the same
hierarchy (paper, Section 4.2) -- so every engine of a hierarchy lands on
the same shard and delivery semantics are identical to a single bus, while
unrelated hierarchies stop sharing routing tables (and, once a concurrent
bus lands, will stop sharing a lock: each shard keeps the immutable
route-row design that makes atomic swaps possible).

:class:`~repro.core.local_engine.LocalTPSEngine` runs over the sharded bus
unchanged -- the bus is a drop-in facade with the same
``attach``/``detach``/``publish``/``engines_for`` surface -- which is the
point of the exercise: a third binding built purely from public pieces.
"""

from __future__ import annotations

import zlib
from typing import Any, Tuple, Type

from repro.core.bindings import BindingRequest, register_binding
from repro.core.exceptions import PSException
from repro.core.local_engine import LocalBus, LocalTPSEngine
from repro.core.type_registry import type_name

#: Shard count of the process-wide default sharded bus.
DEFAULT_SHARD_COUNT = 8


class ShardedLocalBus:
    """N independent :class:`LocalBus` shards, partitioned by hierarchy root.

    Presents the exact ``LocalBus`` surface
    (``attach``/``detach``/``publish``/``engines_for``), delegating each call
    to the shard owning the engine's hierarchy.  The partition key is the
    advertised (root type) name hashed with CRC-32, so placement is stable
    across processes and runs -- Python's randomised ``hash()`` would not be.
    """

    def __init__(self, shards: int = DEFAULT_SHARD_COUNT) -> None:
        if shards < 1:
            raise PSException(f"a sharded bus needs at least 1 shard, got {shards}")
        self.shards: Tuple[LocalBus, ...] = tuple(LocalBus() for _ in range(shards))

    def shard_index(self, root_name: str) -> int:
        """The shard owning the hierarchy advertised as ``root_name``."""
        return zlib.crc32(root_name.encode("utf-8")) % len(self.shards)

    def shard_for(self, root_name: str) -> LocalBus:
        """The :class:`LocalBus` shard owning ``root_name``'s hierarchy."""
        return self.shards[self.shard_index(root_name)]

    # ------------------------------------------------- LocalBus facade

    def attach(self, engine: "LocalTPSEngine") -> None:
        """Attach an engine to its hierarchy's shard."""
        self.shard_for(engine.registry.advertised_name).attach(engine)

    def detach(self, engine: "LocalTPSEngine") -> None:
        """Detach an engine from its hierarchy's shard."""
        self.shard_for(engine.registry.advertised_name).detach(engine)

    def engines_for(self, root: Type[Any]) -> Tuple["LocalTPSEngine", ...]:
        """Every engine attached to the hierarchy rooted at ``root``."""
        return self.shard_for(type_name(root)).engines_for(root)

    def publish(self, publisher: "LocalTPSEngine", event: Any) -> int:
        """Deliver through the publisher's shard (same semantics as LocalBus)."""
        return self.shard_for(publisher.registry.advertised_name).publish(
            publisher, event
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        attached = sum(len(engines) for shard in self.shards for engines in shard._engines.values())
        return f"ShardedLocalBus(shards={len(self.shards)}, engines={attached})"


#: Default process-wide sharded bus, used when the engine supplies no bus.
DEFAULT_SHARDED_BUS = ShardedLocalBus()


def _sharded_binding(request: BindingRequest) -> LocalTPSEngine:
    """The ``"SHARDED"`` binding factory.

    Uses the engine's ``local_bus`` when it already is a
    :class:`ShardedLocalBus`, falls back to the process-wide default when no
    bus was given, and rejects a plain ``LocalBus`` (silently unsharding
    would betray the binding's name).
    """
    bus = request.local_bus
    if bus is None:
        bus = DEFAULT_SHARDED_BUS
    elif not isinstance(bus, ShardedLocalBus):
        raise PSException(
            "the SHARDED binding needs a ShardedLocalBus (or no bus at all); "
            f"got {type(bus).__name__}: construct the engine with "
            "TPSEngine(EventType, local_bus=ShardedLocalBus(shards=N))"
        )
    return LocalTPSEngine(
        request.event_type,
        bus=bus,
        criteria=request.criteria,
        codec=request.codec,
    )


register_binding(
    "SHARDED", _sharded_binding, capabilities=("in-process", "sharded"), replace=True
)


__all__ = [
    "DEFAULT_SHARDED_BUS",
    "DEFAULT_SHARD_COUNT",
    "ShardedLocalBus",
]
