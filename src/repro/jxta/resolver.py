"""Peer Resolver Protocol (PRP).

"The PRP is a protocol just above the transport layer.  This protocol
dispatches each JXTA message to the right services.  The more handlers are
registered with PRP, the more peers a given peer is potentially able to
communicate with."  (paper, Section 2.2, Figure 2)

Services (discovery, peer information, pipe binding...) register a named
:class:`ResolverHandler`.  A query sent under that name is delivered to the
same-named handler on the receiving peer, which may return a response; the
response travels back to the querying peer and is handed to its handler's
``process_response``.  Queries can be addressed to one peer or propagated to
every reachable peer (multicast + rendez-vous re-propagation).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Optional, Protocol, TYPE_CHECKING

from repro.jxta.endpoint import EndpointEnvelope
from repro.jxta.errors import ResolverError
from repro.jxta.ids import PeerID
from repro.jxta.message import Message

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.jxta.peergroup import PeerGroup

_query_counter = itertools.count(1)


@dataclass
class ResolverQuery:
    """A query delivered to a :class:`ResolverHandler`."""

    handler_name: str
    query_id: str
    body: str
    src_peer: PeerID


@dataclass
class ResolverResponse:
    """A response delivered back to the querying peer's handler."""

    handler_name: str
    query_id: str
    body: str
    src_peer: PeerID


class ResolverHandler(Protocol):
    """The interface resolver handlers implement."""

    def process_query(self, query: ResolverQuery) -> Optional[str]:
        """Handle an incoming query; return a response body or None for no response."""

    def process_response(self, response: ResolverResponse) -> None:
        """Handle a response to a query this peer sent earlier."""


class ResolverService:
    """Per-group query/response dispatch service."""

    SERVICE_NAME = "jxta.service.resolver"

    _KIND_QUERY = "query"
    _KIND_RESPONSE = "response"

    def __init__(self, group: "PeerGroup") -> None:
        self.group = group
        self.peer = group.peer
        self._handler_table: Dict[str, ResolverHandler] = {}
        self._param = group.group_id.to_urn()
        self.peer.endpoint.register_listener(self.SERVICE_NAME, self._param, self._on_envelope)

    # ------------------------------------------------------------- handlers

    def register_handler(self, name: str, handler: ResolverHandler) -> None:
        """Register ``handler`` under ``name`` (replacing any previous one)."""
        self._handler_table[name] = handler

    def unregister_handler(self, name: str) -> None:
        """Remove the handler registered under ``name`` (missing names are ignored)."""
        self._handler_table.pop(name, None)

    def handler_names(self) -> list[str]:
        """Names of all registered handlers."""
        return sorted(self._handler_table)

    # --------------------------------------------------------------- queries

    def send_query(
        self,
        handler_name: str,
        body: str,
        *,
        dest_peer: Optional[PeerID] = None,
    ) -> str:
        """Send a query under ``handler_name``.

        With ``dest_peer`` the query goes to that peer only; otherwise it is
        propagated to every reachable peer.  Returns the query id, which the
        handler will see again on any responses.
        """
        if handler_name not in self._handler_table:
            # A handler must exist locally to receive the responses.
            raise ResolverError(
                f"cannot send a query for unregistered handler {handler_name!r}"
            )
        query_id = f"{self.peer.peer_id.to_urn()}/q{next(_query_counter)}"
        message = self._build(self._KIND_QUERY, handler_name, query_id, body)
        self.peer.metrics.counter("resolver_queries_sent").increment()
        if dest_peer is None:
            self.peer.endpoint.propagate(message, self.SERVICE_NAME, self._param)
        else:
            self.peer.endpoint.send(dest_peer, message, self.SERVICE_NAME, self._param)
        return query_id

    def send_response(
        self, handler_name: str, query_id: str, body: str, dest_peer: PeerID
    ) -> bool:
        """Send a response for ``query_id`` back to ``dest_peer``."""
        message = self._build(self._KIND_RESPONSE, handler_name, query_id, body)
        self.peer.metrics.counter("resolver_responses_sent").increment()
        return self.peer.endpoint.send(dest_peer, message, self.SERVICE_NAME, self._param)

    def _build(self, kind: str, handler_name: str, query_id: str, body: str) -> Message:
        message = Message()
        message.add("kind", kind)
        message.add("handler", handler_name)
        message.add("query_id", query_id)
        message.add("body", body)
        return message

    # --------------------------------------------------------------- receive

    def _on_envelope(self, envelope: EndpointEnvelope, message: Message) -> None:
        kind = message.get_text("kind")
        handler_name = message.get_text("handler")
        query_id = message.get_text("query_id")
        body = message.get_text("body")
        handler = self._handler_table.get(handler_name)
        if handler is None:
            self.peer.metrics.counter("resolver_unhandled").increment()
            return
        src_peer = envelope.source_peer_id
        if kind == self._KIND_QUERY:
            self.peer.metrics.counter("resolver_queries_received").increment()
            if src_peer == self.peer.peer_id:
                # Our own propagated query echoed back; nothing to answer.
                return
            response_body = handler.process_query(
                ResolverQuery(
                    handler_name=handler_name,
                    query_id=query_id,
                    body=body,
                    src_peer=src_peer,
                )
            )
            if response_body is not None:
                self.send_response(handler_name, query_id, response_body, src_peer)
        elif kind == self._KIND_RESPONSE:
            self.peer.metrics.counter("resolver_responses_received").increment()
            handler.process_response(
                ResolverResponse(
                    handler_name=handler_name,
                    query_id=query_id,
                    body=body,
                    src_peer=src_peer,
                )
            )
        else:
            self.peer.metrics.counter("resolver_malformed").increment()


__all__ = [
    "ResolverHandler",
    "ResolverQuery",
    "ResolverResponse",
    "ResolverService",
]
