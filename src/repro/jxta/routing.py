"""Endpoint Routing Protocol (ERP) -- route inspection helpers.

"The ERP is used to route the different messages between the different peers.
This allows different peers to exchange messages even when they do not know
how to connect to each other (because of a firewall for example)."
(paper, Section 2.2, Figure 6)

The actual relaying behaviour is implemented inside the endpoint service
(:meth:`~repro.jxta.endpoint.EndpointService._relay_through_router` and the
forwarding logic in ``_receive_unicast``): when a peer cannot reach a
destination over any shared transport it hands the envelope to a router or
rendez-vous peer, which forwards it.

This module provides the protocol-level view: :class:`EndpointRouter` answers
"how would I reach that peer right now?" with a :class:`Route`, which tests,
examples and the monitoring service use to inspect the topology without
sending traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, TYPE_CHECKING

from repro.jxta.ids import PeerID
from repro.net.transport import TransportKind

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.jxta.peer import Peer


@dataclass
class Route:
    """A route from the local peer to a destination peer.

    ``hops`` lists the network addresses traversed after leaving the local
    peer (empty for a direct route); ``transport`` is the transport used for
    the first hop.
    """

    destination: str
    direct: bool
    transport: Optional[TransportKind]
    hops: List[str] = field(default_factory=list)

    @property
    def reachable(self) -> bool:
        """Whether any path (direct or relayed) was found."""
        return self.transport is not None or bool(self.hops)

    @property
    def hop_count(self) -> int:
        """Number of intermediate relays (0 for a direct route)."""
        return len(self.hops)


class EndpointRouter:
    """Answers route queries against the current address book and topology."""

    def __init__(self, peer: "Peer") -> None:
        self.peer = peer

    def find_route(self, destination: PeerID | str) -> Route:
        """Compute how the local peer would reach ``destination`` right now.

        The answer mirrors the endpoint's send logic: try a direct transport
        (TCP then HTTP), then a single relay through a known router or
        rendez-vous peer that can itself reach the destination directly.
        """
        dest_urn = destination.to_urn() if isinstance(destination, PeerID) else destination
        endpoint = self.peer.endpoint
        network = self.peer.node.network
        address = endpoint.known_address(dest_urn)
        if network is None or address is None:
            return Route(destination=dest_urn, direct=False, transport=None)
        for kind in (TransportKind.TCP, TransportKind.HTTP):
            if network.reachable(self.peer.node.address, address, kind):
                return Route(destination=dest_urn, direct=True, transport=kind)
        # Relayed: find a router we can reach that can reach the destination.
        for relay_address in endpoint._router_candidates():
            if relay_address == self.peer.node.address:
                continue
            for first_hop in (TransportKind.TCP, TransportKind.HTTP):
                if not network.reachable(self.peer.node.address, relay_address, first_hop):
                    continue
                for second_hop in (TransportKind.TCP, TransportKind.HTTP):
                    if network.reachable(relay_address, address, second_hop):
                        return Route(
                            destination=dest_urn,
                            direct=False,
                            transport=first_hop,
                            hops=[relay_address],
                        )
        return Route(destination=dest_urn, direct=False, transport=None)

    def can_reach(self, destination: PeerID | str) -> bool:
        """Whether any direct or single-relay path to ``destination`` exists."""
        return self.find_route(destination).reachable


__all__ = ["EndpointRouter", "Route"]
