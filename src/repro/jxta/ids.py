"""JXTA identifiers.

"An ID identifies any JXTA resource, which can be a peer, a pipe, a peergroup
or a codat (code and data)."  (paper, Section 2.1)

IDs are UUID-based and rendered in the JXTA URN style
(``urn:jxta:uuid-<32 hex digits><2-digit kind code>``).  Crucially for the
Pipe Binding Protocol, IDs are stable: a peer that crashes and comes back with
a different network address keeps its PeerID, which is what lets pipes survive
address changes (paper, Section 2.2 footnote on the PBP).

ID generation is deterministic when a seed is supplied, so simulations and
tests are reproducible.
"""

from __future__ import annotations

import uuid
from collections import OrderedDict
from typing import ClassVar, Optional, Type

from repro.jxta.errors import AdvertisementError
from repro.net.entropy import seeded_rng

_URN_PREFIX = "urn:jxta:uuid-"


class IDFactory:
    """Generates UUIDs, deterministically when seeded."""

    def __init__(self, seed: Optional[int] = None) -> None:
        self._rng = seeded_rng(seed) if seed is not None else None

    def new_uuid(self) -> uuid.UUID:
        """Return a fresh UUID (random, or derived from the seeded RNG)."""
        if self._rng is None:
            # The unseeded default factory mirrors real JXTA, where IDs are
            # OS-random; every simulation seeds it via seed_ids().
            return uuid.uuid4()  # repro-lint: disable=RL004 - documented OS-random default
        return uuid.UUID(int=self._rng.getrandbits(128), version=4)


#: Process-wide default factory; :func:`seed_ids` replaces it for reproducible runs.
_default_factory = IDFactory()


def seed_ids(seed: Optional[int]) -> None:
    """Make subsequently generated IDs deterministic (or random again with ``None``)."""
    global _default_factory
    _default_factory = IDFactory(seed)


class JxtaID:
    """Base class of all JXTA identifiers.

    Subclasses declare a two-character ``kind_code`` which is appended to the
    URN so that the resource kind can be recovered from the string form, as in
    real JXTA IDs.
    """

    kind_code: ClassVar[str] = "00"
    kind_name: ClassVar[str] = "generic"

    __slots__ = ("_uuid",)

    def __init__(self, value: Optional[uuid.UUID] = None) -> None:
        self._uuid = value if value is not None else _default_factory.new_uuid()

    @property
    def uuid(self) -> uuid.UUID:
        """The underlying UUID."""
        return self._uuid

    def to_urn(self) -> str:
        """Render as ``urn:jxta:uuid-<hex><kind code>``."""
        return f"{_URN_PREFIX}{self._uuid.hex.upper()}{self.kind_code}"

    @classmethod
    def from_urn(cls, urn: str) -> "JxtaID":
        """Parse a URN back into the appropriate :class:`JxtaID` subclass.

        The subclass is chosen from the kind code; calling ``PeerID.from_urn``
        on a pipe URN raises :class:`AdvertisementError`.
        """
        if not urn.startswith(_URN_PREFIX):
            raise AdvertisementError(f"not a JXTA URN: {urn!r}")
        body = urn[len(_URN_PREFIX) :]
        if len(body) != 34:
            raise AdvertisementError(f"malformed JXTA URN body: {urn!r}")
        hex_part, kind = body[:32], body[32:]
        target = _KIND_REGISTRY.get(kind)
        if target is None:
            raise AdvertisementError(f"unknown JXTA ID kind code {kind!r} in {urn!r}")
        if cls is not JxtaID and not issubclass(target, cls):
            raise AdvertisementError(
                f"URN {urn!r} identifies a {target.kind_name}, not a {cls.kind_name}"
            )
        try:
            value = uuid.UUID(hex=hex_part)
        except ValueError as exc:
            raise AdvertisementError(f"malformed UUID in {urn!r}") from exc
        return target(value)

    # Equality and hashing are by (type, uuid) so a PeerID never compares
    # equal to a PipeID even if the UUIDs collide.
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, JxtaID):
            return NotImplemented
        return type(self) is type(other) and self._uuid == other._uuid

    def __hash__(self) -> int:
        return hash((type(self).__name__, self._uuid))

    def __lt__(self, other: "JxtaID") -> bool:
        if not isinstance(other, JxtaID):
            return NotImplemented
        return (type(self).__name__, self._uuid.int) < (type(other).__name__, other._uuid.int)

    def __str__(self) -> str:
        return self.to_urn()

    def __repr__(self) -> str:
        short = self._uuid.hex[:6] + ".." + self._uuid.hex[-3:]
        return f"{type(self).__name__}({short})"


class PeerID(JxtaID):
    """Identifies a peer (any networked device running the substrate)."""

    kind_code = "03"
    kind_name = "peer"


class PeerGroupID(JxtaID):
    """Identifies a peer group."""

    kind_code = "02"
    kind_name = "peergroup"


class PipeID(JxtaID):
    """Identifies a pipe (virtual communication channel)."""

    kind_code = "04"
    kind_name = "pipe"


class ModuleID(JxtaID):
    """Identifies a module/service implementation."""

    kind_code = "05"
    kind_name = "module"


class CodatID(JxtaID):
    """Identifies a codat (a unit of code-and-data shared inside a group)."""

    kind_code = "06"
    kind_name = "codat"


_KIND_REGISTRY: dict[str, Type[JxtaID]] = {
    cls.kind_code: cls for cls in (JxtaID, PeerID, PeerGroupID, PipeID, ModuleID, CodatID)
}

#: The well-known ID of the world (net) peer group every peer boots into.
WORLD_GROUP_ID = PeerGroupID(uuid.UUID(int=0x4A585441_57524C44_00000000_00000001))


class BoundedIdSet:
    """An LRU-bounded set of message/envelope ids for duplicate filtering.

    Membership and insertion are O(1); once ``capacity`` ids are held, adding
    a new id evicts the least recently seen one, so a duplicate filter's
    memory stays constant under sustained traffic.  A non-positive capacity
    disables eviction entirely.

    Used both by the TPS engine (application-level message ids) and by the
    wire service's at-least-once receiver (wire-level ids), which is why it
    lives here in the id layer rather than in either consumer.
    """

    __slots__ = ("capacity", "_entries")

    def __init__(self, capacity: int = 0) -> None:
        self.capacity = capacity
        self._entries: "OrderedDict[str, None]" = OrderedDict()

    def __contains__(self, item: str) -> bool:
        return item in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def add(self, item: str) -> None:
        """Record ``item`` as seen, evicting the oldest id beyond capacity."""
        self.seen(item)

    def seen(self, item: str) -> bool:
        """Record ``item``; True if it was already present (a duplicate).

        A hit refreshes the id's recency, so ids that keep producing
        duplicates stay protected from eviction (LRU, not FIFO).
        """
        entries = self._entries
        if item in entries:
            entries.move_to_end(item)
            return True
        entries[item] = None
        if 0 < self.capacity < len(entries):
            entries.popitem(last=False)
        return False


__all__ = [
    "BoundedIdSet",
    "CodatID",
    "IDFactory",
    "JxtaID",
    "ModuleID",
    "PeerGroupID",
    "PeerID",
    "PipeID",
    "WORLD_GROUP_ID",
    "seed_ids",
]
