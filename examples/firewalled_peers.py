#!/usr/bin/env python3
"""Firewall traversal: the Endpoint Routing Protocol in action (paper, Figure 6).

Peer A and peer C sit on different network segments; C is behind a corporate
firewall that blocks inbound TCP and all multicast, allowing only HTTP.  A
rendez-vous/router peer bridges the two segments.  TPS events published by A
still reach C: the rendez-vous re-propagates discovery traffic across the
segments and the endpoint relays data messages over HTTP through the router
when no direct route exists.

Run it with::

    python examples/firewalled_peers.py
"""

from __future__ import annotations

from repro.core import TPSEngine
from repro.jxta.platform import JxtaNetworkBuilder
from repro.net.firewall import Firewall
from repro.net.network import LinkSpec
from repro.net.transport import TransportKind


class Alert:
    """The event type: an operational alert."""

    def __init__(self, severity: str, text: str) -> None:
        self.severity = severity
        self.text = text

    def __str__(self) -> str:
        return f"[{self.severity}] {self.text}"


def main() -> None:
    builder = JxtaNetworkBuilder(seed=99)

    # The rendez-vous/router sits on the "public" segment.
    rendezvous = builder.add_rendezvous("rdv-gw")

    # Peer A: an ordinary peer on the public segment.
    peer_a = builder.add_peer("peer-a")

    # Peer C: on the "corporate" segment, behind a restrictive firewall, with
    # only an HTTP interface (no multicast, no raw TCP).
    peer_c = builder.add_peer(
        "peer-c",
        segment="corporate",
        transports=[TransportKind.HTTP],
        firewall=Firewall.corporate_default(),
    )
    # A WAN-ish link connects the corporate segment to the gateway.
    builder.connect_segments("peer-c", "rdv-gw", LinkSpec.wan())
    # Peer C can only have learned about the rendez-vous out of band.
    peer_c.world_group.rendezvous.connect("rdv-gw")
    builder.settle(rounds=8)

    route = peer_c.world_group.router.find_route(peer_a.peer_id)
    print(f"route from peer-c to peer-a before traffic: direct={route.direct}, hops={route.hops}")

    publisher = TPSEngine(Alert, peer=peer_a).new_interface("JXTA")
    subscriber = TPSEngine(Alert, peer=peer_c).new_interface("JXTA")
    received: list[str] = []
    subscriber.subscribe(lambda alert: received.append(str(alert)))
    builder.settle(rounds=16)

    publisher.publish(Alert("critical", "backup generator offline"))
    publisher.publish(Alert("info", "nightly batch finished"))
    builder.settle(rounds=16)

    print(f"peer-c (behind the firewall) received {len(received)} alerts:")
    for line in received:
        print(f"  {line}")
    relayed = rendezvous.metrics.counters().get("endpoint_forwarded", 0)
    print(f"envelopes relayed by the rendez-vous/router: {relayed}")


if __name__ == "__main__":
    main()
