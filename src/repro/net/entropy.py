# repro-lint: disable-file=RL004 - this module IS the audited escape hatch
"""The one audited home of wall-clock and RNG access on simulated paths.

The RL004 determinism rule (see ``docs/CONCURRENCY.md#rl004``) bans
``time``, ``random`` and ``datetime`` everywhere in ``repro.net``,
``repro.jxta`` and ``repro.core``: a simulated run must be a pure function
of its seeds and the simclock, or replays and the chaos suite stop being
reproducible.  But the escape hatches have to live *somewhere* --
components need seeded RNGs, the circuit breaker needs a real monotonic
clock when it guards a real executor, and the sharded engine's drain loop
needs a real (tiny) pause.  This module is that somewhere: the only
file-level RL004 suppression in the tree, so every nondeterministic
touchpoint is auditable in one place and "whitelisted by construction" --
callers import these helpers instead of carrying their own pragma.

House rules for the helpers:

* :func:`seeded_rng` is the only way a component builds its RNG.  Pass the
  component's seed; pass ``None`` only where OS entropy is the documented
  intent (and say so at the call site).
* :func:`monotonic_clock` is for *real-time* guards (circuit-breaker
  cool-downs around a real thread pool), never for simulated event time --
  that is the simclock's job.
* :func:`brief_pause` is for real-thread backoff loops (executor drains).
  Simulated code advances virtual time instead.
"""

from __future__ import annotations

import random
import time
from typing import Callable, Optional

__all__ = ["brief_pause", "monotonic_clock", "seeded_rng"]


def seeded_rng(seed: Optional[int]) -> random.Random:
    """A private :class:`random.Random` stream for one component.

    With a seed the stream is fully deterministic; with ``None`` it is
    OS-seeded (callers must document why that is acceptable).  Never
    returns the process-global ``random`` module: sharing that stream
    couples every component's draw sequence to import order.
    """
    return random.Random(seed)


#: The real monotonic clock, for real-time guards only.  Exposed as a
#: callable so components accept ``clock=monotonic_clock`` by default and a
#: virtual clock under test.
monotonic_clock: Callable[[], float] = time.monotonic


def brief_pause(seconds: float) -> None:
    """Really sleep, briefly -- for real-thread polling/backoff loops."""
    time.sleep(seconds)
