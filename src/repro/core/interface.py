"""The TPSInterface: the seven methods of the paper's Figure 8.

.. code-block:: java

    public interface TPSInterface<Type> {
        public void publish(Type type) throws PSException;                 // (1)
        public void subscribe(TPSCallBackInterface<Type> tpsCBI,
                              TPSExceptionHandler<Type> tpsExH);           // (2)
        public void subscribe(TPSCallBackInterface<Type>[] tpsCBI,
                              TPSExceptionHandler<Type>[] tpsExH);         // (3)
        public void unsubscribe(TPSCallBackInterface<Type> tpsCBI,
                                TPSExceptionHandler<Type> tpsExH);         // (4)
        public void unsubscribe();                                         // (5)
        public Vector objectsReceived();                                   // (6)
        public Vector objectsSent();                                       // (7)
    }

The Python rendering keeps the same seven operations.  Methods (2) and (3)
collapse into one ``subscribe`` that accepts either a single callback or a
sequence of callbacks; methods (4) and (5) collapse into ``unsubscribe`` with
optional arguments.  CamelCase aliases (``objectsReceived``/``objectsSent``)
are provided for readers following the paper's listings.

On top of the paper's surface, the v2 API adds (without changing any of the
seven signatures above -- ``tests/test_api_surface.py`` pins them):

* ``subscribe`` returns a
  :class:`~repro.core.subscriptions.SubscriptionHandle` -- cancel exactly
  the subscriptions one call created, or scope them with ``with``;
* :meth:`TPSInterface.subscription` opens the fluent builder
  (``tps.subscription(cb).where(pred).on_error(h).start()``) whose
  predicates are pushed down into the binding's dispatch rows;
* :meth:`TPSInterface.stream` returns an
  :class:`~repro.core.subscriptions.EventStream` for pull-style
  consumption with explicit backpressure;
* :meth:`TPSInterface.close` (idempotent; every interface is a context
  manager) ends the interface's life: ``publish``/``subscribe`` afterwards
  raise :class:`PSException` uniformly across all bindings;
* :meth:`TPSInterface.publish_many` publishes a batch of events in one call
  (bindings may override it with a genuine batch path -- the local binding
  routes it through the sharded bus's parallel cross-shard fan-out; on a
  content-keyed :class:`~repro.core.sharded_engine.ShardedLocalBus` even a
  single hot hierarchy's batch spreads across shards, with per-key order
  preserved).

Locking model: lifecycle transitions (the close flag flip, open-stream
registration) serialise on a module-level lock -- they are rare, so sharing
one lock across interfaces costs nothing and avoids per-instance lazy-lock
races in an ABC without an ``__init__``.  The lock is never held while
calling out into binding teardown, stream close or application code, so no
lock-ordering cycle can form; hot-path reads (``_tps_closed`` in
``_check_open`` and in the local bus delivery loop) are plain attribute
loads with no lock at all.
"""

from __future__ import annotations

import abc
import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Generic, List, Optional, Sequence, TypeVar, Union

from repro.core.callbacks import (
    CallbackLike,
    ExceptionHandlerLike,
    TPSCallBackInterface,
    TPSExceptionHandler,
    as_callback,
    as_exception_handler,
)
from repro.core.exceptions import PSException
from repro.core.subscriptions import (
    EventStream,
    StreamCore,
    SubscriptionBuilder,
    SubscriptionHandle,
)

EventT = TypeVar("EventT")

#: Serialises interface lifecycle transitions (close flag, stream registry)
#: across *all* interfaces; see the module docstring's locking model.
_LIFECYCLE_LOCK = threading.Lock()


@dataclass
class Subscription:
    """One (callback, exception handler) pair registered with an interface."""

    callback: TPSCallBackInterface[Any]
    exception_handler: TPSExceptionHandler[Any]
    #: The objects originally passed by the application, kept so unsubscribe
    #: can match on them even when they were adapted from plain callables.
    original_callback: Any = None
    original_handler: Any = None
    #: Pushed-down event filter: when set, events it rejects are skipped in
    #: the dispatch rows themselves and never reach the callback.
    predicate: Optional[Callable[[Any], bool]] = None
    #: Crash-containment circuit breaker (see
    #: :class:`repro.core.subscriptions.CircuitBreaker`); attached by the
    #: manager when a breaker policy is configured, None otherwise.
    breaker: Optional[Any] = None

    def matches(self, callback: Any, handler: Any = None) -> bool:
        """Whether this subscription was registered with the given objects."""
        cb_match = callback in (self.callback, self.original_callback)
        if handler is None:
            return cb_match
        return cb_match and handler in (self.exception_handler, self.original_handler)


@dataclass
class PublishReceipt:
    """Returned by :meth:`TPSInterface.publish`.

    Captures the virtual CPU time the publish call charged to the publishing
    peer (the paper's Figure 18 "invocation time") and the per-pipe send
    receipts from the wire service.

    When the binding publishes over the reliable wire protocol, the wire
    receipts carry live :class:`~repro.jxta.wire.DeliveryTracker` objects;
    the ``delivery_*``/``retry_count`` helpers aggregate them (and stay
    zero/empty for bindings without trackers, e.g. LOCAL or the composite's
    local-delivery count entry).
    """

    cpu_time: float
    completion_time: float
    pipes: int
    wire_receipts: List[Any] = field(default_factory=list)

    @property
    def delivery_trackers(self) -> List[Any]:
        """The per-send reliable-delivery trackers (empty without reliability)."""
        trackers = []
        for receipt in self.wire_receipts:
            tracker = getattr(receipt, "tracker", None)
            if tracker is not None:
                trackers.append(tracker)
        return trackers

    @property
    def retry_count(self) -> int:
        """Total retransmissions performed (so far) for this publish."""
        return sum(tracker.retries for tracker in self.delivery_trackers)

    @property
    def acked_targets(self) -> int:
        """Targets that acknowledged delivery (so far)."""
        return sum(len(tracker.acked) for tracker in self.delivery_trackers)

    @property
    def failed_targets(self) -> int:
        """Targets for which delivery terminally failed."""
        return sum(len(tracker.failed) for tracker in self.delivery_trackers)

    @property
    def delivery_settled(self) -> bool:
        """Whether every tracked target reached a terminal state (True when untracked)."""
        return all(tracker.settled for tracker in self.delivery_trackers)


class TPSInterfaceCore(abc.ABC, Generic[EventT]):
    """The front-end-agnostic half of the TPS interface.

    Everything here is shared between the synchronous front-end
    (:class:`TPSInterface`, implemented by the LOCAL/SHARDED/JXTA bindings)
    and the asyncio front-end
    (:class:`~repro.core.async_engine.AsyncTPSEngine`): the subscription
    surface and its bookkeeping, the fluent builder entry (``.where()``
    push-down included -- the builder only ever talks to ``_subscribe_one``
    and ``_make_stream``), the open-stream registry, the idempotent close
    template (:meth:`_close_impl`) and the uniform post-close
    :class:`PSException`.  What a front-end adds is *how waiting and
    publishing are expressed*: the sync front-end blocks and returns
    receipts, the async one returns awaitables.  Concrete bindings implement
    the abstract transport hooks (``_add_subscription``,
    ``_remove_subscriptions``, the history queries, ``_make_stream``) and
    may override :meth:`_do_close` for binding-specific teardown.
    """

    #: Lifecycle flag; a class attribute so bindings need no __init__ hook.
    _tps_closed = False

    # ------------------------------------------------------------- lifecycle

    @property
    def closed(self) -> bool:
        """Whether ``close`` has run."""
        return self._tps_closed

    def _close_impl(self) -> None:
        """End this interface's life (idempotent, same across all bindings).

        Detaches from the underlying infrastructure, drops every
        subscription via the binding's :meth:`_do_close` and closes every
        open stream (waking their blocked consumers and producers).
        Afterwards ``publish`` and ``subscribe`` raise
        :class:`PSException`; ``unsubscribe`` and the history queries keep
        working.  Should teardown itself fail, the interface reverts to open
        so ``close()`` can be retried.

        Safe against concurrent callers: the flag flip is atomic (under the
        lifecycle lock), so exactly one thread runs the teardown; the losers
        return immediately.  A publish already past its ``_check_open`` may
        still be delivering while teardown runs -- it delivers against the
        pre-close snapshots, and the bus's closed-row skip keeps any *other*
        closing engine from receiving.  The teardown failure (and the revert
        to open it triggers) is visible only to the caller that ran the
        teardown: a concurrent loser has already returned believing the
        interface closed, so the winning caller owns the retry.

        Both front-ends route their public ``close`` here; it is sync on
        purpose -- even the async front-end's teardown (detach from a
        loop-owned bus, drop subscriptions, close streams) completes without
        suspending, so ``await tps.close()`` never leaves a half-closed
        interface across a scheduling point.
        """
        with _LIFECYCLE_LOCK:
            if self._tps_closed:
                return
            self._tps_closed = True
        try:
            self._do_close()
        except BaseException:
            with _LIFECYCLE_LOCK:
                self._tps_closed = False
            raise
        self._close_streams()

    def _do_close(self) -> None:
        """Binding-specific teardown; runs at most once, from :meth:`close`."""

    # -- open-stream tracking: a stream whose subscription disappears under
    # it (interface close, blanket unsubscribe) must be closed too, or its
    # blocked consumers/producers would wait forever.

    def _register_stream(self, stream: StreamCore) -> None:
        with _LIFECYCLE_LOCK:
            if not self._tps_closed:
                streams = getattr(self, "_open_streams", None)
                if streams is None:
                    streams = []
                    self._open_streams = streams
                streams.append(stream)
                return
        # The interface closed while the stream was being built (it passed
        # _check_open before the flag flipped, but registered after
        # _close_streams took its snapshot).  Nobody would ever auto-close
        # it, so close it here: consumers see the uniform closed-stream
        # error instead of blocking on a subscription that no longer exists.
        stream.close()

    def _unregister_stream(self, stream: StreamCore) -> None:
        with _LIFECYCLE_LOCK:
            streams = getattr(self, "_open_streams", None)
            if streams is not None and stream in streams:
                streams.remove(stream)

    def _close_streams(self) -> None:
        # Snapshot under the lock, close outside it: stream.close() calls
        # back into _unregister_stream, which takes the lock itself.
        with _LIFECYCLE_LOCK:
            streams = list(getattr(self, "_open_streams", ()) or ())
        for stream in streams:
            stream.close()

    def _check_open(self) -> None:
        """Raise the uniform post-close error when the interface is closed."""
        if self._tps_closed:
            registry = getattr(self, "registry", None)
            name = f" for {registry.interface_name}" if registry is not None else ""
            raise PSException(
                f"the TPS interface{name} is closed; "
                "publish/subscribe are no longer available"
            )

    # ---------------------------------------------------------- subscribing

    @abc.abstractmethod
    def _add_subscription(self, subscription: Subscription) -> None:
        """Register one subscription (binding-specific)."""

    @abc.abstractmethod
    def _remove_subscriptions(
        self, callback: Optional[Any] = None, handler: Optional[Any] = None
    ) -> int:
        """Remove matching subscriptions (all of them when ``callback`` is None)."""

    def subscribe(
        self,
        callback: Union[CallbackLike, Sequence[CallbackLike]],
        exception_handler: Union[
            ExceptionHandlerLike, Sequence[ExceptionHandlerLike], None
        ] = None,
    ) -> SubscriptionHandle:
        """(2)/(3) Subscribe one callback -- or several at once -- to the type.

        The list form mirrors the paper's second ``subscribe`` overload, used
        "to register several call-back objects to handle the events in
        different ways" (e.g. a console view and a GUI view of the same
        events).  When a list of callbacks is given, ``exception_handler``
        may be a matching list, a single handler shared by all callbacks, or
        None.

        Returns a :class:`SubscriptionHandle` covering every subscription
        this call created (the paper's ``void`` return stays compatible:
        callers that ignore it lose nothing).
        """
        if isinstance(callback, (list, tuple)):
            callbacks = list(callback)
            if isinstance(exception_handler, (list, tuple)):
                handlers = list(exception_handler)
                if len(handlers) != len(callbacks):
                    raise PSException(
                        "subscribe: the callback and exception-handler lists must have "
                        f"the same length ({len(callbacks)} != {len(handlers)})"
                    )
            else:
                handlers = [exception_handler] * len(callbacks)
            if not callbacks:
                raise PSException("subscribe: empty callback list")
            subscriptions = [self._subscribe_one(cb, eh) for cb, eh in zip(callbacks, handlers)]
        else:
            subscriptions = [self._subscribe_one(callback, exception_handler)]  # type: ignore[arg-type]
        return SubscriptionHandle(self, subscriptions)

    def _subscribe_one(
        self,
        callback: CallbackLike,
        exception_handler: Optional[ExceptionHandlerLike],
        predicate: Optional[Callable[[Any], bool]] = None,
    ) -> Subscription:
        self._check_open()
        subscription = Subscription(
            callback=as_callback(callback),
            exception_handler=as_exception_handler(exception_handler),
            original_callback=callback,
            original_handler=exception_handler,
            predicate=predicate,
        )
        self._add_subscription(subscription)
        return subscription

    def _discard_subscription(self, subscription: Subscription) -> int:
        """Remove one exact subscription object (handle cancellation).

        The default falls back to callback/handler matching; bindings backed
        by a :class:`~repro.core.subscriber.TPSSubscriberManager` override it
        with identity-based removal.
        """
        return self._remove_subscriptions(
            subscription.callback, subscription.exception_handler
        )

    def subscription(self, callback: Optional[CallbackLike] = None) -> SubscriptionBuilder:
        """Open the fluent subscription builder (v2).

        ``tps.subscription(cb).where(pred).on_error(h).start()`` registers a
        filtered subscription whose predicate is pushed down into the
        binding's dispatch rows; ``.stream(...)`` instead of ``.start()``
        consumes it pull-style.
        """
        self._check_open()
        return SubscriptionBuilder(self, callback)

    def stream(
        self,
        maxsize: int = 0,
        policy: str = "block",
        from_offset: Optional[int] = None,
    ) -> StreamCore:
        """Consume this interface's events pull-style (v2).

        Returns the front-end's stream flavour (a context manager): the
        threaded :class:`EventStream` for sync bindings, an
        :class:`~repro.core.async_engine.AsyncEventStream` (supporting
        ``async for``) over the ASYNC binding -- same ``maxsize``/``policy``
        contract either way.  A positive ``maxsize`` bounds the buffer;
        ``policy`` picks what happens when it is full (``"block"`` the
        publisher, or ``"drop_oldest"``).

        ``from_offset`` makes the stream *resumable*: it first replays the
        retained received history at or after that offset, then follows
        live events, each history offset delivered exactly once and in
        order (the stream pulls from the engine's history store instead of
        buffering pushed events, so replay and live delivery cannot race
        into duplicates).  Offsets a bounded ring store already evicted are
        skipped; ``from_offset=tps.history_offset`` means "from now on" and
        still yields a resumable stream (see ``EventStream.resume``).
        """
        self._check_open()
        return self._make_stream(maxsize, policy, from_offset=from_offset)

    def _make_stream(
        self,
        maxsize: int,
        policy: str,
        predicate: Optional[Callable[[Any], bool]] = None,
        exception_handler: Optional[Any] = None,
        from_offset: Optional[int] = None,
    ) -> StreamCore:
        """Build this front-end's stream flavour (hook for :meth:`stream` and
        :meth:`SubscriptionBuilder.stream
        <repro.core.subscriptions.SubscriptionBuilder.stream>`)."""
        raise NotImplementedError

    def unsubscribe(
        self,
        callback: Optional[CallbackLike] = None,
        exception_handler: Optional[ExceptionHandlerLike] = None,
    ) -> int:
        """(4)/(5) Remove one subscription, or every subscription.

        With a ``callback`` (and optionally its handler) only the matching
        subscription is removed; with no arguments all call-back objects are
        removed and "no event is received anymore" -- which includes closing
        every open :class:`EventStream`, so their blocked consumers wake up
        instead of waiting on a subscription that no longer exists.  Returns
        the number of subscriptions removed.
        """
        removed = self._remove_subscriptions(callback, exception_handler)
        if callback is None:
            self._close_streams()
        return removed

    # --------------------------------------------------------------- history
    #
    # Every concrete binding installs a (received, sent) pair of
    # :class:`~repro.core.history.HistoryStore` objects as ``self._received``
    # / ``self._sent`` at construction (see ``make_history_pair``); the
    # queries below are shared across all five bindings through this core.

    def _history_store(self, sent: bool = False) -> Any:
        store = getattr(self, "_sent" if sent else "_received", None)
        if store is None:
            raise PSException(
                f"{type(self).__name__} exposes no history store; bindings "
                "must install self._received/self._sent at construction"
            )
        return store

    def objects_received(self) -> List[EventT]:
        """(6) The retained events delivered to this interface, in order.

        Retention contract: the backing store bounds what "so far" means.
        With the default ``history="ring"`` store only the newest
        ``history_size`` events per direction are retained (older ones are
        evicted, first-in first-out) so a long-running engine's memory stays
        constant; with ``history="log"`` the full history is retained on
        disk and this call materialises all of it.  Use
        :meth:`history_since` with an offset cursor to consume the history
        incrementally instead of re-reading the whole Vector.
        """
        return self._history_store().snapshot()

    def objects_sent(self) -> List[EventT]:
        """(7) The retained events published through this interface, in order.

        Same retention contract as :meth:`objects_received`: bounded to the
        newest ``history_size`` events under the default ring store,
        complete (and durable) under ``history="log"``.
        """
        return self._history_store(sent=True).snapshot()

    @property
    def history_offset(self) -> int:
        """The offset the next delivered event will get (monotonic per engine).

        ``stream(from_offset=tps.history_offset)`` therefore means "from
        now on"; any smaller offset replays retained history first.
        """
        return self._history_store().next_offset

    @property
    def sent_offset(self) -> int:
        """The offset the next published event will get in the sent history."""
        return self._history_store(sent=True).next_offset

    def history_since(self, offset: int) -> List[Any]:
        """Retained delivered events at or after ``offset``, as
        ``(offset, event)`` pairs.

        The replay primitive behind resumable streams and peer catch-up:
        offsets are dense and monotone, so a consumer that remembers the
        last offset it processed calls ``history_since(last + 1)`` to get
        exactly what it missed (minus anything a bounded store evicted).
        """
        return [(entry_offset, event) for entry_offset, event, _ in self._history_store().since(offset)]

    def sent_history_since(self, offset: int) -> List[Any]:
        """Retained published events at or after ``offset`` (``(offset, event)``)."""
        return [
            (entry_offset, event)
            for entry_offset, event, _ in self._history_store(sent=True).since(offset)
        ]

    # Aliases matching the paper's method names.
    def objectsReceived(self) -> List[EventT]:  # noqa: N802 - paper-compatible alias
        """Alias of :meth:`objects_received` matching the paper's Figure 8."""
        return self.objects_received()

    def objectsSent(self) -> List[EventT]:  # noqa: N802 - paper-compatible alias
        """Alias of :meth:`objects_sent` matching the paper's Figure 8."""
        return self.objects_sent()


class TPSInterface(TPSInterfaceCore[EventT]):
    """The synchronous TPS interface; concrete bindings implement the transport.

    The shared subscription/builder/lifecycle machinery lives in
    :class:`TPSInterfaceCore`; this class binds it to the blocking
    front-end: ``publish`` returns a :class:`PublishReceipt`, ``close``
    returns when teardown is done, streams are the condition-variable
    :class:`EventStream`, and ``with tps:`` scopes the interface.  (The
    asyncio front-end, :class:`~repro.core.async_engine.AsyncTPSEngine`,
    binds the same core to awaitables instead.)
    """

    def close(self) -> None:
        """End this interface's life (idempotent; see :meth:`_close_impl`)."""
        self._close_impl()

    def __enter__(self) -> "TPSInterface[EventT]":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # ------------------------------------------------------------ publishing

    @abc.abstractmethod
    def publish(self, event: EventT) -> PublishReceipt:
        """(1) Publish an instance of the interface's type to all subscribers.

        Raises :class:`PSException` (or a subclass) when the object is not an
        instance of the type or the interface is not initialised yet.
        """

    def publish_many(self, events: "Sequence[EventT]") -> List[PublishReceipt]:
        """Publish a batch of events; returns one receipt per event (v2).

        The default simply loops :meth:`publish`, preserving order and
        per-event error semantics; bindings with a real batch path override
        it (the local binding hands the whole batch to the bus, and over a
        :class:`~repro.core.sharded_engine.ShardedLocalBus` batches from
        independent hierarchies -- or, content-keyed, from independent keys
        of one hierarchy -- run concurrently on the shard executor).
        """
        self._check_open()
        return [self.publish(event) for event in events]

    # --------------------------------------------------------------- streams

    def _make_stream(
        self,
        maxsize: int,
        policy: str,
        predicate: Optional[Callable[[Any], bool]] = None,
        exception_handler: Optional[Any] = None,
        from_offset: Optional[int] = None,
    ) -> EventStream:
        return EventStream(
            self,
            maxsize=maxsize,
            policy=policy,
            predicate=predicate,
            exception_handler=exception_handler,
            source=self._history_store() if from_offset is not None else None,
            from_offset=from_offset,
        )


__all__ = [
    "EventStream",
    "PublishReceipt",
    "StreamCore",
    "Subscription",
    "SubscriptionBuilder",
    "SubscriptionHandle",
    "TPSInterface",
    "TPSInterfaceCore",
]
