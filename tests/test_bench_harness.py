"""Tests for the benchmark harness: scenarios, figure runners, code size, reporting."""

from __future__ import annotations

import pytest

from repro.bench import (
    JXTA_WIRE,
    SR_JXTA,
    SR_TPS,
    VARIANTS,
    ScenarioConfig,
    build_scenario,
    measure_code_size,
    run_invocation_time,
    run_publisher_throughput,
    run_subscriber_throughput,
)
from repro.bench.figures import run_figure18, run_figure19, run_figure20
from repro.bench.reporting import (
    format_code_size,
    format_figure18,
    format_figure19,
    format_figure20,
    format_table,
)
from repro.bench.scenario import PAPER_MESSAGE_SIZE


class TestScenario:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            ScenarioConfig(variant="bogus")
        with pytest.raises(ValueError):
            ScenarioConfig(publishers=0)

    @pytest.mark.parametrize("variant", VARIANTS)
    def test_build_and_deliver(self, variant):
        scenario = build_scenario(
            ScenarioConfig(variant=variant, publishers=1, subscribers=2, seed=9)
        )
        assert len(scenario.publishers) == 1
        assert len(scenario.subscribers) == 2
        receipt = scenario.publishers[0].publish()
        assert receipt.cpu_time > 0
        scenario.run_until(max(scenario.now, receipt.completion_time))
        scenario.settle(rounds=8)
        # Every subscriber got the event exactly once (application level).
        assert scenario.total_received() == 2
        assert all(s.received_count() == 1 for s in scenario.subscribers)

    def test_message_size_affects_wire_payload(self):
        scenario = build_scenario(
            ScenarioConfig(variant=JXTA_WIRE, message_size=PAPER_MESSAGE_SIZE, seed=9)
        )
        receipt = scenario.publishers[0].publish()
        scenario.settle(rounds=6)
        subscriber = scenario.subscribers[0]
        assert len(subscriber.app.payloads[0]) == PAPER_MESSAGE_SIZE

    def test_default_offers_are_generated(self):
        scenario = build_scenario(ScenarioConfig(variant=SR_TPS, seed=9))
        handle = scenario.publishers[0]
        handle.publish()
        handle.publish()
        assert handle.published == 2


class TestFigureRunners:
    def test_invocation_time_series_shape(self):
        series = run_invocation_time(SR_TPS, subscribers=1, events=10, seed=3)
        assert len(series.per_event_ms) == 10
        assert series.mean_ms > 0
        assert series.stdev_ms >= 0
        assert 0 <= series.relative_stdev < 1.5

    def test_publisher_throughput_requires_divisible_epochs(self):
        with pytest.raises(ValueError):
            run_publisher_throughput(SR_TPS, events=10, epochs=3)

    def test_publisher_throughput_small_run(self):
        series = run_publisher_throughput(JXTA_WIRE, events=20, epochs=4, seed=3)
        assert len(series.epoch_rates) == 4
        assert series.mean_rate > 0

    def test_subscriber_throughput_small_run(self):
        series = run_subscriber_throughput(SR_JXTA, publishers=1, duration=10.0, seed=3)
        assert len(series.per_second) == 10
        assert series.mean_rate > 0

    def test_figure_sweeps_produce_all_series(self):
        fig18 = run_figure18(events=5, subscriber_counts=(1,), variants=(JXTA_WIRE, SR_TPS))
        assert set(fig18.series) == {(JXTA_WIRE, 1), (SR_TPS, 1)}
        assert fig18.mean_ms(SR_TPS, 1) > fig18.mean_ms(JXTA_WIRE, 1)
        fig19 = run_figure19(events=10, epochs=2, subscriber_counts=(1,), variants=(SR_TPS,))
        assert fig19.mean_rate(SR_TPS, 1) > 0
        fig20 = run_figure20(duration=5.0, publisher_counts=(1,), variants=(SR_TPS,))
        assert len(fig20.get(SR_TPS, 1).per_second) == 5

    def test_shapes_match_paper_ordering_quick(self):
        """A reduced-size sanity check of the headline ordering (full check in benchmarks/)."""
        wire = run_invocation_time(JXTA_WIRE, subscribers=1, events=15, seed=7)
        tps = run_invocation_time(SR_TPS, subscribers=1, events=15, seed=7)
        jxta = run_invocation_time(SR_JXTA, subscribers=1, events=15, seed=7)
        assert wire.mean_ms < jxta.mean_ms
        assert abs(tps.mean_ms - jxta.mean_ms) / jxta.mean_ms < 0.10


class TestCodeSize:
    def test_measure_code_size(self):
        report = measure_code_size()
        assert report.tps_application > 0
        assert report.jxta_application > report.tps_application
        assert report.tps_library > report.jxta_application
        assert report.minimal_saving == report.jxta_application - report.tps_application
        assert report.full_saving > report.minimal_saving
        assert report.application_ratio > 1.0
        assert any(name.endswith("tps_app.py") for name in report.per_module)

    def test_count_code_lines_ignores_comments_and_docstrings(self, tmp_path):
        from repro.bench.code_size import count_code_lines

        source = tmp_path / "sample.py"
        source.write_text(
            '"""Module docstring."""\n'
            "# a comment\n"
            "\n"
            "def f(x):\n"
            '    """Docstring."""\n'
            "    # another comment\n"
            "    return x + 1\n"
        )
        assert count_code_lines(source) == 2  # def line + return line


class TestReporting:
    def test_format_table_aligns_columns(self):
        table = format_table(["name", "value"], [("a", 1), ("longer-name", 22)])
        lines = table.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("name")
        assert all(len(line) == len(lines[0]) or len(line) <= len(lines[2]) for line in lines)

    def test_figure_formatters_produce_text(self):
        fig18 = run_figure18(events=3, subscriber_counts=(1,), variants=(JXTA_WIRE, SR_TPS))
        fig19 = run_figure19(events=4, epochs=2, subscriber_counts=(1,), variants=(SR_TPS,))
        fig20 = run_figure20(duration=3.0, publisher_counts=(1,), variants=(SR_TPS,))
        assert "Figure 18" in format_figure18(fig18)
        assert "Figure 19" in format_figure19(fig19)
        assert "Figure 20" in format_figure20(fig20)
        assert "SR-TPS" in format_figure19(fig19)
        assert "programming effort" in format_code_size(measure_code_size())
