"""Command-line entry point: ``python -m repro``.

Subcommands:

* ``figures`` -- regenerate the paper's evaluation (same as
  ``examples/reproduce_figures.py``);
* ``bench`` -- run the hot-path micro-benchmark suite and optionally write
  the ``repro-bench/v1`` JSON trajectory file (``--json BENCH_N.json``);
* ``demo`` -- run the quickstart scenario and print what happened;
* ``lint`` -- run the concurrency/determinism lint rules (``repro.analysis``)
  over the tree; exit 0 clean, 1 findings, 2 usage error;
* ``info`` -- print the package version and the calibrated cost model.
"""

from __future__ import annotations

import argparse
import dataclasses
import sys

from repro._version import __version__


def _cmd_figures(args: argparse.Namespace) -> int:
    from repro.bench import measure_code_size, run_figure18, run_figure19, run_figure20
    from repro.bench.reporting import (
        format_code_size,
        format_figure18,
        format_figure19,
        format_figure20,
    )

    which = args.figure
    if which in ("18", "all"):
        print(format_figure18(run_figure18()), end="\n\n")
    if which in ("19", "all"):
        print(format_figure19(run_figure19()), end="\n\n")
    if which in ("20", "all"):
        print(format_figure20(run_figure20()), end="\n\n")
    if which in ("code-size", "all"):
        print(format_code_size(measure_code_size()), end="\n\n")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench.perf import format_suite, run_perf_suite, write_suite

    if args.json:
        # Fail before the (long) suite runs, not after, on an unwritable
        # path -- without touching the target, so an interrupted run leaves
        # no stray empty file behind.
        import os

        directory = os.path.dirname(os.path.abspath(args.json))
        writable = (
            os.path.isdir(directory)
            and os.access(directory, os.W_OK)
            and (not os.path.exists(args.json) or os.access(args.json, os.W_OK))
        )
        if not writable:
            print(f"error: cannot write {args.json}", file=sys.stderr)
            return 2
    document = run_perf_suite(args.profile)
    print(format_suite(document))
    if args.json:
        write_suite(args.json, document)
        print(f"\nwrote {args.json}")
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    from repro import tps_network
    from repro.apps.skirental import SkiRental, SkiRentalTPSPublisher, SkiRentalTPSSubscriber

    net = tps_network(peers=1 + args.subscribers, seed=args.seed)
    shop = SkiRentalTPSPublisher(net.peer(0))
    net.settle(rounds=8)
    shoppers = [SkiRentalTPSSubscriber(net.peer(1 + index)) for index in range(args.subscribers)]
    net.settle(rounds=12)
    for index in range(args.events):
        receipt = shop.publish_offer(SkiRental(f"shop-{index % 3}", 40.0 + index, "Salomon", 7))
        net.run_until(max(net.now, receipt.completion_time))
    net.settle(rounds=8)
    print(f"published {args.events} offers to {args.subscribers} subscriber(s)")
    for shopper in shoppers:
        best = shopper.best_offer()
        print(f"  {shopper.peer.name}: received {shopper.received_count()}, best offer: {best}")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis.cli import run

    return run(args)


def _cmd_info(args: argparse.Namespace) -> int:
    from repro.net.cost import PAPER_TESTBED

    print(f"repro {__version__} -- reproduction of 'OS Support for P2P Programming: a Case for TPS'")
    print("calibrated cost model (seconds):")
    for entry in dataclasses.fields(PAPER_TESTBED):
        print(f"  {entry.name:32s} {getattr(PAPER_TESTBED, entry.name)}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    parser.add_argument("--version", action="version", version=__version__)
    subparsers = parser.add_subparsers(dest="command", required=True)

    figures = subparsers.add_parser("figures", help="regenerate the paper's figures")
    figures.add_argument(
        "--figure", choices=["18", "19", "20", "code-size", "all"], default="all"
    )
    figures.set_defaults(func=_cmd_figures)

    bench = subparsers.add_parser(
        "bench", help="run the hot-path micro-benchmarks (perf trajectory)"
    )
    bench.add_argument(
        "--json", metavar="PATH", default=None,
        help="also write the repro-bench/v1 JSON document to PATH",
    )
    bench.add_argument(
        "--profile", choices=["full", "quick", "smoke"], default="full",
        help="iteration counts: full (BENCH_*.json), quick, or smoke (tests)",
    )
    bench.set_defaults(func=_cmd_bench)

    demo = subparsers.add_parser("demo", help="run a small ski-rental scenario")
    demo.add_argument("--subscribers", type=int, default=2)
    demo.add_argument("--events", type=int, default=5)
    demo.add_argument("--seed", type=int, default=2002)
    demo.set_defaults(func=_cmd_demo)

    lint = subparsers.add_parser(
        "lint", help="check the concurrency/determinism invariants (RL001..RL005)"
    )
    lint.add_argument(
        "paths", nargs="*", metavar="PATH",
        help="files or directories to lint (default: src/repro)",
    )
    lint.add_argument(
        "--json", action="store_true",
        help="emit the repro-lint/v1 JSON document instead of the text report",
    )
    lint.add_argument(
        "--baseline", metavar="FILE", default=None,
        help="baseline of grandfathered findings (default: lint-baseline.json if present)",
    )
    lint.add_argument(
        "--no-baseline", action="store_true",
        help="ignore any baseline file; report every finding",
    )
    lint.add_argument(
        "--write-baseline", action="store_true",
        help="rewrite the baseline from the current findings and exit 0",
    )
    lint.add_argument(
        "--rules", action="append", metavar="IDS", default=None,
        help="comma-separated rule ids to run (repeatable; default: all)",
    )
    lint.add_argument(
        "--list-rules", action="store_true",
        help="list the registered rules and their scopes, then exit",
    )
    lint.set_defaults(func=_cmd_lint)

    info = subparsers.add_parser("info", help="print version and cost-model calibration")
    info.set_defaults(func=_cmd_info)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
