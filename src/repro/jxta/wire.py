"""The WIRE service: many-to-many pipes.

"The best known [services] are the monitoring service, the cms service and
the wire service (responsible for providing many-to-many communication)."
(paper, Section 2)

Both the TPS layer and the paper's hand-written SR-JXTA application sit on
top of the wire service: a publisher creates a wire *output* pipe and every
subscriber creates a wire *input* pipe on the same pipe advertisement; a
message sent on the output pipe is delivered to every bound input pipe.

The wire service is also where the reproduction charges the substrate costs
that shape the paper's figures:

* sending charges a base cost plus a per-resolved-connection cost (this is
  what makes four subscribers roughly three times as expensive as one,
  Figures 18-19);
* receiving charges a base cost plus a per-connected-publisher cost and is
  serialised through a bounded queue (this is what makes the subscriber
  saturate around 6-8 events/second in Figure 20, and drop messages when
  flooded -- the August-2001 JXTA release "was not able to handle
  connections between more than 5 peers sending a lot of messages");
* every cost is perturbed by lognormal noise, giving the large standard
  deviations the paper reports.

The layers above (SR-JXTA, SR-TPS) add their own per-message costs through
``extra_send_cost`` and the input pipes' ``processing_cost``, so the relative
ordering JXTA-WIRE < SR-JXTA <= SR-TPS emerges from the layering itself.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Set, Tuple, TYPE_CHECKING

from repro.jxta.advertisement import PipeAdvertisement
from repro.jxta.endpoint import EndpointEnvelope
from repro.jxta.errors import PipeError
from repro.jxta.ids import PeerID, PipeID
from repro.jxta.message import Message
from repro.jxta.pipes import InputPipe, OutputPipe, PipeKind, PipeMessageListener

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.jxta.peergroup import PeerGroup

_wire_message_counter = itertools.count(1)

#: Name of the message element carrying the wire-level message id.
WIRE_MSG_ID_ELEMENT = "JxtaWireMsgId"
#: Name of the message element carrying the original wire source peer.
WIRE_SRC_ELEMENT = "JxtaWireSrc"


@dataclass
class SendReceipt:
    """Returned by :meth:`WireOutputPipe.send`.

    Attributes
    ----------
    cpu_time:
        Virtual CPU time charged to the sending peer for this call -- the
        "invocation time" of the paper's Figure 18.
    completion_time:
        Virtual time at which the send call completes (messages hit the
        network at this instant).
    targets:
        Number of resolved connections the message was sent to.
    wire_message_id:
        The wire-level message id stamped on the message.
    """

    cpu_time: float
    completion_time: float
    targets: int
    wire_message_id: str


class WireInputPipe(InputPipe):
    """A wire (many-to-many) input pipe; deliveries arrive via the wire service."""


class WireOutputPipe(OutputPipe):
    """A wire (many-to-many) output pipe with cost-accounted sends."""

    def __init__(
        self,
        advertisement: PipeAdvertisement,
        wire_service: "WireService",
        *,
        extra_send_cost: float = 0.0,
    ) -> None:
        super().__init__(advertisement, wire_service.group.pipe_service)
        self._wire = wire_service
        #: Extra virtual CPU charged per send on top of the wire cost,
        #: representing the work done by the layer above (SR-JXTA / SR-TPS).
        self.extra_send_cost = extra_send_cost
        self.receipts: List[SendReceipt] = []

    def send(self, message: Message) -> SendReceipt:  # type: ignore[override]
        """Send a message to every bound input pipe; returns a :class:`SendReceipt`."""
        if self.closed:
            raise PipeError("cannot send on a closed wire output pipe")
        receipt = self._wire.send(self, message, extra_cpu=self.extra_send_cost)
        self.sent_count += 1
        self.receipts.append(receipt)
        return receipt


class WireService:
    """Per-group many-to-many message propagation."""

    #: Well-known service constants, as used in the paper's Figure 15
    #: (``WireService.WireName``, ``WireVersion``, ``WireUri``, ``WireCode``,
    #: ``WireSecurity``).
    WireName = "jxta.service.wire"
    WireVersion = "1.0"
    WireUri = "urn:jxta:wire"
    WireCode = "net.jxta.impl.wire.WireService"
    WireSecurity = "none"

    def __init__(self, group: "PeerGroup", *, duplicate_suppression: bool = False) -> None:
        self.group = group
        self.peer = group.peer
        self.cost_model = self.peer.cost_model
        self.noise = self.peer.noise
        #: When True the wire service itself drops messages whose wire id was
        #: already delivered.  The real JXTA-WIRE did *not* do this -- the
        #: paper lists duplicate handling among the functionality the SR
        #: layers add -- so the default is False; ablation benches flip it.
        self.duplicate_suppression = duplicate_suppression
        #: pipe URN -> wire input pipes opened locally.
        self._inputs: Dict[str, List[WireInputPipe]] = {}
        #: pipe URN -> set of source peer URNs seen (connected publishers).
        self._sources: Dict[str, Set[str]] = {}
        self._seen_wire_ids: Set[str] = set()
        self._queue: Deque[Tuple[str, EndpointEnvelope, Message]] = deque()
        self._busy = False

    # ----------------------------------------------------------- pipe setup

    def create_input_pipe(
        self,
        advertisement: PipeAdvertisement,
        listener: Optional[PipeMessageListener] = None,
        *,
        processing_cost: float = 0.0,
    ) -> WireInputPipe:
        """Open a wire input pipe: messages sent on this pipe id will be delivered here."""
        pipe = WireInputPipe(
            advertisement,
            self.group.pipe_service,
            listener=listener,
            processing_cost=processing_cost,
        )
        urn = advertisement.pipe_id.to_urn()
        if urn not in self._inputs:
            self._inputs[urn] = []
            self.peer.endpoint.register_listener(self.WireName, urn, self._on_wire_envelope)
        self._inputs[urn].append(pipe)
        # Register the binding with the PBP so remote output pipes resolve us,
        # and announce it.
        binding_service = self.group.pipe_service
        binding_service._local.setdefault(urn, [])
        if pipe not in binding_service._local[urn]:
            binding_service._local[urn].append(pipe)
        binding_service._announce(advertisement.pipe_id, bind=True)
        self.peer.metrics.counter("wire_input_pipes").increment()
        return pipe

    def create_output_pipe(
        self,
        advertisement: PipeAdvertisement,
        *,
        extra_send_cost: float = 0.0,
        resolve: bool = True,
    ) -> WireOutputPipe:
        """Open a wire output pipe (and resolve the current set of bound peers)."""
        pipe = WireOutputPipe(advertisement, self, extra_send_cost=extra_send_cost)
        if resolve:
            self.group.pipe_service.resolve(advertisement.pipe_id)
        self.peer.metrics.counter("wire_output_pipes").increment()
        return pipe

    def close_input_pipe(self, pipe: WireInputPipe) -> None:
        """Close a wire input pipe and drop its binding."""
        urn = pipe.pipe_id.to_urn()
        pipes = self._inputs.get(urn, [])
        if pipe in pipes:
            pipes.remove(pipe)
        if not pipes and urn in self._inputs:
            del self._inputs[urn]
            self.peer.endpoint.unregister_listener(self.WireName, urn)
        pipe.close()

    def input_pipes(self, pipe_id: PipeID) -> List[WireInputPipe]:
        """Wire input pipes this peer has open for ``pipe_id``."""
        return list(self._inputs.get(pipe_id.to_urn(), []))

    def connected_publishers(self, pipe_id: PipeID) -> int:
        """Number of distinct remote publishers seen on ``pipe_id``."""
        return len(self._sources.get(pipe_id.to_urn(), set()))

    # ----------------------------------------------------------------- send

    def send(
        self, pipe: WireOutputPipe, message: Message, *, extra_cpu: float = 0.0
    ) -> SendReceipt:
        """Send ``message`` on ``pipe`` to every resolved bound peer.

        The call charges the sending peer's virtual CPU (base + per-connection
        + serialisation + the caller's ``extra_cpu``), schedules the actual
        network transmissions at the completion instant and returns a
        :class:`SendReceipt` describing the cost.
        """
        wire_message = message.dup()
        wire_id = f"{self.peer.peer_id.to_urn()}/w{next(_wire_message_counter)}"
        wire_message.add(WIRE_MSG_ID_ELEMENT, wire_id)
        wire_message.add(WIRE_SRC_ELEMENT, self.peer.peer_id.to_urn())
        targets = pipe.resolved_peers()
        size = wire_message.size
        wire_cost = self.noise.jittered(
            self.cost_model.send_cost(len(targets), size), self.cost_model.wire_jitter
        )
        total_cost = wire_cost + extra_cpu
        simulator = self.peer.simulator
        completion = simulator.now + total_cost
        pipe_urn = pipe.pipe_id.to_urn()

        def _transmit() -> None:
            if targets:
                for target in targets:
                    self.peer.endpoint.send(target, wire_message, self.WireName, pipe_urn)
            else:
                # No resolved bindings yet: fall back to propagation so early
                # messages still have a chance to reach late-resolving peers.
                self.peer.endpoint.propagate(wire_message, self.WireName, pipe_urn)

        simulator.schedule(total_cost, _transmit, label=f"wire-send:{self.peer.name}")
        self.peer.metrics.timer("wire_send_cpu").observe(total_cost)
        self.peer.metrics.counter("wire_messages_sent").increment()
        self.peer.metrics.series("wire_sent").record(completion)
        return SendReceipt(
            cpu_time=total_cost,
            completion_time=completion,
            targets=len(targets),
            wire_message_id=wire_id,
        )

    # -------------------------------------------------------------- receive

    def _on_wire_envelope(self, envelope: EndpointEnvelope, message: Message) -> None:
        pipe_urn = envelope.param
        if pipe_urn not in self._inputs:
            self.peer.metrics.counter("wire_unbound_deliveries").increment()
            return
        wire_id = message.get_text(WIRE_MSG_ID_ELEMENT)
        if self.duplicate_suppression and wire_id:
            if wire_id in self._seen_wire_ids:
                self.peer.metrics.counter("wire_duplicates_suppressed").increment()
                return
            self._seen_wire_ids.add(wire_id)
        source = message.get_text(WIRE_SRC_ELEMENT) or envelope.src_peer
        self._sources.setdefault(pipe_urn, set()).add(source)
        if len(self._queue) >= self.cost_model.receive_queue_limit:
            self.peer.metrics.counter("wire_messages_dropped").increment()
            return
        self._queue.append((pipe_urn, envelope, message))
        self.peer.metrics.counter("wire_messages_enqueued").increment()
        if not self._busy:
            self._process_next()

    def _process_next(self) -> None:
        if not self._queue:
            self._busy = False
            return
        self._busy = True
        pipe_urn, envelope, message = self._queue.popleft()
        pipes = self._inputs.get(pipe_urn, [])
        connections = max(1, len(self._sources.get(pipe_urn, set())))
        service_time = self.noise.jittered(
            self.cost_model.receive_cost(connections, message.size),
            self.cost_model.wire_jitter,
        )
        service_time += sum(pipe.processing_cost for pipe in pipes)

        def _finish() -> None:
            source_urn = message.get_text(WIRE_SRC_ELEMENT) or envelope.src_peer
            source = PeerID.from_urn(source_urn)
            for pipe in list(pipes):
                pipe.receive(message, source)
            self.peer.metrics.counter("wire_messages_delivered").increment()
            self.peer.metrics.timer("wire_receive_cpu").observe(service_time)
            self.peer.metrics.series("wire_received").record(self.peer.simulator.now)
            self._process_next()

        self.peer.simulator.schedule(
            service_time, _finish, label=f"wire-recv:{self.peer.name}"
        )


__all__ = [
    "SendReceipt",
    "WIRE_MSG_ID_ELEMENT",
    "WIRE_SRC_ELEMENT",
    "WireInputPipe",
    "WireOutputPipe",
    "WireService",
]
