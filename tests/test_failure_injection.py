"""Failure-injection tests: partitions, crashes, faults, firewalls, floods.

The paper's setting (JXTA 1.0 in 2001) is explicitly unreliable; the
reproduction's substrate exposes the corresponding failure hooks, and these
tests check that the layers above degrade the way the paper's system would:
lost peers stop receiving, healed partitions resume delivery, a peer that
comes back under a new address keeps its subscriptions (stable UUIDs), and a
flooded subscriber drops messages instead of falling over.

The reliability scenarios drive the wire layer's at-least-once protocol over
a fault-injected network (:class:`~repro.net.faults.FaultPlan`): duplicated
packets deliver exactly once, reordered packets deliver in per-source
publish order, scripted drops are healed by retries, a total-loss link ends
in a *reported* terminal failure (never silence), and a persistently-raising
callback is quarantined -- and later rehabilitated -- by its circuit
breaker.
"""

from __future__ import annotations

import pytest

from repro.apps.skirental.types import SkiRental
from repro.core import TPSConfig, TPSEngine
from repro.core.exceptions import DeliveryFailedError
from repro.jxta.platform import JxtaNetworkBuilder
from repro.net.faults import FaultPlan, LinkFaults
from repro.net.firewall import Firewall
from repro.net.network import LinkSpec


def _pub_sub(
    builder,
    pub_name="f-pub",
    sub_name="f-sub",
    pub_config=None,
    sub_config=None,
    **sub_kwargs,
):
    pub_peer = builder.add_peer(pub_name)
    publisher = TPSEngine(
        SkiRental,
        peer=pub_peer,
        config=TPSConfig(search_timeout=2.0, **(pub_config or {})),
    ).new_interface("JXTA")
    builder.settle(rounds=8)
    sub_peer = builder.add_peer(sub_name, **sub_kwargs)
    subscriber = TPSEngine(
        SkiRental,
        peer=sub_peer,
        config=TPSConfig(
            search_timeout=6.0, create_if_missing=False, **(sub_config or {})
        ),
    ).new_interface("JXTA")
    inbox = []
    subscriber.subscribe(inbox.append)
    builder.settle(rounds=12)
    return publisher, subscriber, inbox, pub_peer, sub_peer


def _publish(builder, publisher, count=1, price=10.0):
    receipts = []
    for index in range(count):
        receipt = publisher.publish(SkiRental("shop", price + index, "b", 1))
        builder.simulator.run_until(max(builder.simulator.now, receipt.completion_time))
        receipts.append(receipt)
    builder.settle(rounds=8)
    return receipts


class TestPartitions:
    def test_partition_blocks_then_heals(self, builder):
        builder.add_rendezvous("rdv-0")
        publisher, _subscriber, inbox, pub_peer, sub_peer = _pub_sub(builder)
        _publish(builder, publisher)
        assert len(inbox) == 1
        # Partition the publisher from both the subscriber and the rendez-vous
        # relay: nothing can get through any more.
        builder.network.partition(pub_peer.node.address, sub_peer.node.address)
        builder.network.partition(pub_peer.node.address, "rdv-0")
        _publish(builder, publisher, price=20.0)
        assert len(inbox) == 1
        # Healing restores delivery for subsequent events.
        builder.network.heal(pub_peer.node.address, sub_peer.node.address)
        builder.network.heal(pub_peer.node.address, "rdv-0")
        _publish(builder, publisher, price=30.0)
        assert len(inbox) == 2

    def test_offline_subscriber_misses_events(self, builder):
        builder.add_rendezvous("rdv-0")
        publisher, _subscriber, inbox, _pub_peer, sub_peer = _pub_sub(builder)
        sub_peer.node.go_offline()
        _publish(builder, publisher)
        assert inbox == []
        sub_peer.node.go_online()
        _publish(builder, publisher, price=42.0)
        assert len(inbox) == 1
        assert inbox[0].price == 42.0


class TestCrashRecovery:
    def test_subscriber_survives_address_change(self, builder):
        """Stable peer UUIDs (PBP): a peer that moves keeps its pipe bindings."""
        builder.add_rendezvous("rdv-0")
        publisher, _subscriber, inbox, pub_peer, sub_peer = _pub_sub(builder)
        _publish(builder, publisher)
        assert len(inbox) == 1
        sub_peer.restart_at_address("moved-subscriber")
        # The publisher's endpoint learns the new address (refreshed peer
        # advertisement / resolver traffic in real JXTA).
        pub_peer.endpoint.learn_address(sub_peer.peer_id, "moved-subscriber")
        _publish(builder, publisher, price=77.0)
        assert len(inbox) == 2
        assert inbox[-1].price == 77.0

    def test_rendezvous_loss_on_single_lan_is_tolerated(self, builder):
        """On one multicast segment, losing the rendez-vous does not stop delivery."""
        rendezvous = builder.add_rendezvous("rdv-0")
        publisher, _subscriber, inbox, _pub, _sub = _pub_sub(builder)
        rendezvous.node.go_offline()
        _publish(builder, publisher)
        assert len(inbox) == 1


class TestFirewallsAndSegments:
    def test_subscriber_behind_firewall_still_served(self, builder):
        builder.add_rendezvous("rdv-0")
        publisher, _subscriber, inbox, _pub_peer, _sub_peer = _pub_sub(
            builder, sub_name="guarded", firewall=Firewall.corporate_default()
        )
        _publish(builder, publisher)
        assert len(inbox) == 1

    def test_cross_segment_subscriber_via_router(self, builder):
        rendezvous = builder.add_rendezvous("rdv-0")
        pub_peer = builder.add_peer("seg-pub")
        publisher = TPSEngine(
            SkiRental, peer=pub_peer, config=TPSConfig(search_timeout=2.0)
        ).new_interface("JXTA")
        builder.settle(rounds=8)
        sub_peer = builder.add_peer("seg-sub", segment="lan1", connect_rendezvous=False)
        builder.connect_segments("seg-sub", "rdv-0", LinkSpec.lan())
        sub_peer.world_group.rendezvous.connect("rdv-0")
        subscriber = TPSEngine(
            SkiRental,
            peer=sub_peer,
            config=TPSConfig(search_timeout=8.0, create_if_missing=False),
        ).new_interface("JXTA")
        inbox = []
        subscriber.subscribe(inbox.append)
        builder.settle(rounds=16)
        _publish(builder, publisher)
        assert len(inbox) == 1
        assert rendezvous.metrics.counters().get("endpoint_forwarded", 0) >= 1


_RELIABLE = {"reliable_delivery": True}


def _reliable_pair(builder, **kwargs):
    """A publisher/subscriber pair with the at-least-once wire protocol on."""
    return _pub_sub(builder, pub_config=dict(_RELIABLE), sub_config=dict(_RELIABLE), **kwargs)


class TestReliableDeliveryUnderFaults:
    def test_duplicated_packets_deliver_exactly_once(self, builder):
        builder.add_rendezvous("rdv-0")
        publisher, _subscriber, inbox, _pub_peer, sub_peer = _reliable_pair(builder)
        builder.network.fault_plan = FaultPlan(
            seed=77, default=LinkFaults(duplicate=1.0)
        )
        _publish(builder, publisher, count=5)
        prices = [offer.price for offer in inbox]
        assert sorted(prices) == [10.0, 11.0, 12.0, 13.0, 14.0]
        assert len(set(prices)) == 5
        counters = sub_peer.metrics.counters()
        suppressed = counters.get("wire_duplicates_suppressed", 0) + counters.get(
            "wire_stale_retransmits", 0
        )
        assert suppressed > 0
        assert builder.network.fault_plan.duplicated > 0

    def test_reordered_packets_deliver_in_publish_order(self, builder):
        builder.add_rendezvous("rdv-0")
        publisher, _subscriber, inbox, _pub_peer, sub_peer = _reliable_pair(builder)
        builder.network.fault_plan = FaultPlan(
            seed=42, default=LinkFaults(reorder=0.6, reorder_window=1.5)
        )
        # A burst with nothing settled in between keeps many messages in
        # flight at once, so the reorder delays genuinely shuffle arrivals.
        for index in range(10):
            publisher.publish(SkiRental("shop", 10.0 + index, "b", 1))
        builder.settle(rounds=16)
        assert [offer.price for offer in inbox] == [10.0 + i for i in range(10)]
        assert sub_peer.metrics.counters().get("wire_out_of_order_held", 0) > 0

    def test_retries_heal_scripted_drops(self, builder):
        builder.add_rendezvous("rdv-0")
        publisher, _subscriber, inbox, pub_peer, sub_peer = _reliable_pair(builder)
        plan = FaultPlan(seed=5)
        builder.network.fault_plan = plan
        plan.drop_next(pub_peer.node.address, sub_peer.node.address, count=2)
        _publish(builder, publisher, price=55.0)
        builder.settle(rounds=8)
        assert [offer.price for offer in inbox] == [55.0]
        assert pub_peer.metrics.counters().get("wire_retries", 0) >= 1
        assert plan.scripted == 2

    def test_total_loss_link_reports_terminal_failure(self, builder):
        builder.add_rendezvous("rdv-0")
        publisher, _subscriber, inbox, pub_peer, sub_peer = _reliable_pair(builder)
        builder.network.fault_plan = FaultPlan(seed=5).set_link(
            pub_peer.node.address, sub_peer.node.address, LinkFaults(drop=1.0)
        )
        failures = []
        publisher.delivery_failure_handler = failures.append
        publisher.publish(SkiRental("shop", 66.0, "b", 1))
        builder.settle(rounds=16)
        assert inbox == []
        assert len(failures) == 1
        error = failures[0]
        assert isinstance(error, DeliveryFailedError)
        assert error.failure.attempts == TPSConfig().max_delivery_attempts
        counters = pub_peer.metrics.counters()
        assert counters.get("tps_delivery_failed", 0) == 1
        assert counters.get("wire_delivery_failed", 0) == 1

    def test_closed_engine_mid_flight_counts_drops(self, builder):
        builder.add_rendezvous("rdv-0")
        publisher, subscriber, inbox, _pub_peer, sub_peer = _pub_sub(builder)
        # Publish, then close the subscriber before letting delivery settle:
        # the in-flight message must land in a counter, not disappear.
        publisher.publish(SkiRental("shop", 10.0, "b", 1))
        subscriber.close()
        builder.settle(rounds=12)
        assert inbox == []
        counters = sub_peer.metrics.counters()
        # Depending on how far teardown got before the message landed, it is
        # refused at the endpoint (listener unregistered by the close), at
        # the wire service (pipe unbound), at the pipe (closed mid-queue) or
        # at the engine (closed flag) -- but always *counted*, never silent.
        accounted = (
            counters.get("endpoint_unhandled", 0)
            + counters.get("wire_unbound_deliveries", 0)
            + counters.get("wire_closed_pipe_drops", 0)
            + counters.get("tps_closed_engine_drops", 0)
        )
        assert accounted >= 1


class TestCircuitBreaker:
    def test_breaker_trips_cools_down_and_recovers(self, builder):
        builder.add_rendezvous("rdv-0")
        pub_peer = builder.add_peer("cb-pub")
        publisher = TPSEngine(
            SkiRental, peer=pub_peer, config=TPSConfig(search_timeout=2.0)
        ).new_interface("JXTA")
        builder.settle(rounds=8)
        sub_peer = builder.add_peer("cb-sub")
        subscriber = TPSEngine(
            SkiRental,
            peer=sub_peer,
            config=TPSConfig(
                search_timeout=6.0,
                create_if_missing=False,
                # Longer than a publish pump (8 settle rounds = 8 virtual
                # seconds), so the while-open publish below genuinely lands
                # inside the cooldown window.
                breaker_threshold=2,
                breaker_cooldown=30.0,
            ),
        ).new_interface("JXTA")
        failing = [True]
        inbox = []

        def flaky(offer):
            if failing[0]:
                raise RuntimeError("subscriber crash")
            inbox.append(offer)

        subscriber.subscribe(flaky)
        builder.settle(rounds=12)
        (subscription,) = subscriber.subscriber_manager.subscriptions()
        breaker = subscription.breaker
        assert breaker is not None

        # Two consecutive failures reach the threshold: the breaker opens.
        _publish(builder, publisher, count=2)
        assert breaker.state == "open"
        assert breaker.trips == 1

        # While open, deliveries are skipped (quarantine), not raised.
        _publish(builder, publisher, price=30.0)
        assert inbox == []
        assert breaker.skipped >= 1

        # After the cooldown (virtual time), the next event is a half-open
        # probe; the callback now succeeds, so the breaker closes again.
        failing[0] = False
        builder.simulator.run_until(builder.simulator.now + 31.0)
        _publish(builder, publisher, price=40.0)
        assert [offer.price for offer in inbox] == [40.0]
        assert breaker.state == "closed"
        assert breaker.resets == 1
        assert [state for state, _ in breaker.events] == ["open", "half_open", "closed"]
        counters = sub_peer.metrics.counters()
        assert counters.get("tps_breaker_open", 0) == 1
        assert counters.get("tps_breaker_half_open", 0) == 1
        assert counters.get("tps_breaker_closed", 0) == 1


class TestOverload:
    def test_flooded_subscriber_drops_rather_than_stalls(self, builder):
        builder.add_rendezvous("rdv-0")
        publisher, _subscriber, inbox, _pub_peer, sub_peer = _pub_sub(builder)
        # Publish a burst far beyond the receive queue limit without letting
        # the subscriber drain.
        limit = sub_peer.cost_model.receive_queue_limit
        for _ in range(limit * 2):
            publisher.publish(SkiRental("shop", 10.0, "b", 1))
        builder.settle(rounds=64)
        dropped = sub_peer.metrics.counters().get("wire_messages_dropped", 0)
        assert dropped > 0
        assert 0 < len(inbox) <= limit * 2 - dropped + 1
        # The subscriber keeps working afterwards.
        _publish(builder, publisher, price=99.0)
        assert inbox[-1].price == 99.0
