"""The simulated network: topology, links and packet delivery.

The :class:`Network` connects :class:`~repro.net.node.Node` objects through
:class:`Link` objects carrying latency, bandwidth, jitter and loss parameters.
The default topology is a single LAN segment (full mesh with one shared
:class:`LinkSpec`), matching the paper's FastEthernet testbed; experiments
exercising the Endpoint Routing Protocol build multi-segment topologies with
firewalled nodes instead.

Delivery is asynchronous: ``transmit`` charges the delay to the simulator and
schedules ``Node.deliver`` at the future instant.  Unreliable transports may
drop packets according to the link's loss rate; reliable transports (TCP,
HTTP) never lose packets but pay their per-packet overhead.

Chaos testing installs a :class:`~repro.net.faults.FaultPlan` on the network
(``network.fault_plan = FaultPlan.chaos(...)``): every scheduled delivery --
including ones on nominally "reliable" transports, since the point is to
exercise the retry/ack/dedup layers above -- is then subject to the plan's
seeded drop/duplicate/reorder/delay decisions.  Injected faults are counted
in the network metrics (``faults_dropped``, ``faults_duplicated``,
``faults_delayed``, ``faults_scripted``), as are routing failures
(``packets_no_route`` for unreachable unicast destinations and
``packets_blocked`` for firewall rejections), so no packet ever vanishes
without a counter.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.net.cost import CostModel, NoiseSource, PAPER_TESTBED
from repro.net.faults import FaultPlan
from repro.net.firewall import Direction
from repro.net.metrics import MetricsRegistry
from repro.net.node import Node
from repro.net.packet import Packet
from repro.net.simclock import Simulator
from repro.net.transport import TransportKind, transport_for


class NetworkError(RuntimeError):
    """Base class for network-level failures."""


class NoRouteError(NetworkError):
    """Raised when no enabled, firewall-permitted path exists between two nodes."""


class UnknownNodeError(NetworkError):
    """Raised when addressing a node the network has never seen."""


@dataclass(frozen=True)
class LinkSpec:
    """Static parameters of a link (or of a whole LAN segment).

    Attributes
    ----------
    latency:
        One-way propagation delay in seconds.
    bandwidth:
        Capacity in bytes/second used for the serialisation delay.
    jitter:
        Relative sigma of lognormal noise applied to the latency.
    loss_rate:
        Probability of dropping a packet carried by an *unreliable* transport.
    """

    latency: float = 0.0006
    bandwidth: float = 100e6 / 8
    jitter: float = 0.05
    loss_rate: float = 0.0

    @classmethod
    def lan(cls, cost_model: CostModel = PAPER_TESTBED) -> "LinkSpec":
        """The paper's 100 Mbit/s FastEthernet segment."""
        return cls(latency=cost_model.lan_latency, bandwidth=cost_model.lan_bandwidth)

    @classmethod
    def wan(cls) -> "LinkSpec":
        """A rough wide-area link for multi-site experiments."""
        return cls(latency=0.045, bandwidth=1.5e6 / 8, jitter=0.2, loss_rate=0.01)


@dataclass
class Link:
    """A concrete (directed-pair) link between two attached nodes."""

    a: str
    b: str
    spec: LinkSpec

    def connects(self, x: str, y: str) -> bool:
        """Whether this link joins addresses ``x`` and ``y`` (in either order)."""
        return {self.a, self.b} == {x, y}


class Network:
    """A collection of nodes, links and segments driven by one simulator.

    Parameters
    ----------
    simulator:
        The discrete-event scheduler charging all delays.
    default_link:
        Link parameters used for any pair of nodes on the same segment that
        has no explicit link.
    cost_model:
        The calibrated cost model shared with the JXTA substrate.
    noise:
        Deterministic noise source (seeded) used for jitter and loss.
    fault_plan:
        Optional seeded :class:`~repro.net.faults.FaultPlan` consulted for
        every scheduled delivery (chaos testing).  May also be installed
        later by assigning ``network.fault_plan``.  The plan owns its own
        RNG, so installing one does not perturb the ``noise`` sequence.
    """

    DEFAULT_SEGMENT = "lan0"

    def __init__(
        self,
        simulator: Optional[Simulator] = None,
        *,
        default_link: Optional[LinkSpec] = None,
        cost_model: CostModel = PAPER_TESTBED,
        noise: Optional[NoiseSource] = None,
        fault_plan: Optional[FaultPlan] = None,
    ) -> None:
        self.simulator = simulator or Simulator()
        self.cost_model = cost_model
        self.noise = noise or NoiseSource()
        self.fault_plan = fault_plan
        self.default_link = default_link or LinkSpec.lan(cost_model)
        self.metrics = MetricsRegistry(name="network")
        self._nodes: Dict[str, Node] = {}
        self._segments: Dict[str, set[str]] = {self.DEFAULT_SEGMENT: set()}
        self._links: List[Link] = []
        self._partitions: set[frozenset[str]] = set()

    # --------------------------------------------------------------- topology

    @property
    def nodes(self) -> List[Node]:
        """All attached nodes, in attachment order."""
        return list(self._nodes.values())

    def node(self, address: str) -> Node:
        """Look up a node by address, raising :class:`UnknownNodeError` if absent."""
        try:
            return self._nodes[address]
        except KeyError:
            raise UnknownNodeError(f"unknown node address {address!r}") from None

    def has_node(self, address: str) -> bool:
        """Whether a node with the given address is attached."""
        return address in self._nodes

    def attach(self, node: Node, *, segment: str = DEFAULT_SEGMENT) -> Node:
        """Attach a node to the network on the given segment.

        Attaching the same address twice is an error; segments are created on
        first use.
        """
        if node.address in self._nodes:
            raise NetworkError(f"a node with address {node.address!r} is already attached")
        node.network = self
        self._nodes[node.address] = node
        self._segments.setdefault(segment, set()).add(node.address)
        return node

    def create_node(
        self,
        address: str,
        *,
        segment: str = DEFAULT_SEGMENT,
        transports: Optional[List[TransportKind | str]] = None,
        firewall=None,
    ) -> Node:
        """Convenience: construct a node and attach it in one call."""
        node = Node(address, transports=transports, firewall=firewall)
        return self.attach(node, segment=segment)

    def segment_of(self, address: str) -> str:
        """Return the name of the segment the node lives on."""
        for name, members in self._segments.items():
            if address in members:
                return name
        raise UnknownNodeError(f"node {address!r} is not on any segment")

    def segment_members(self, segment: str) -> List[str]:
        """Addresses of every node attached to the given segment."""
        return sorted(self._segments.get(segment, set()))

    def connect(self, a: str, b: str, spec: Optional[LinkSpec] = None) -> Link:
        """Add an explicit link between two nodes (possibly on different segments)."""
        self.node(a)
        self.node(b)
        link = Link(a=a, b=b, spec=spec or self.default_link)
        self._links.append(link)
        return link

    def partition(self, a: str, b: str) -> None:
        """Cut all communication between two nodes (fault injection)."""
        self._partitions.add(frozenset((a, b)))

    def heal(self, a: str, b: str) -> None:
        """Undo a previous :meth:`partition` between two nodes."""
        self._partitions.discard(frozenset((a, b)))

    def partitioned(self, a: str, b: str) -> bool:
        """Whether a partition currently separates the two addresses."""
        return frozenset((a, b)) in self._partitions

    def _link_between(self, a: str, b: str) -> Optional[LinkSpec]:
        """The link spec to use between two addresses, or None if unreachable."""
        for link in self._links:
            if link.connects(a, b):
                return link.spec
        if self.segment_of(a) == self.segment_of(b):
            return self.default_link
        return None

    def reachable(self, a: str, b: str, transport: TransportKind | str = TransportKind.TCP) -> bool:
        """Whether ``a`` can send a packet of the given transport directly to ``b``."""
        if a == b:
            return True
        if not self.has_node(a) or not self.has_node(b):
            return False
        if self.partitioned(a, b):
            return False
        if self._link_between(a, b) is None:
            return False
        kind = TransportKind(transport) if isinstance(transport, str) else transport
        sender, receiver = self.node(a), self.node(b)
        if not (sender.supports(kind) and receiver.supports(kind)):
            return False
        probe = Packet(source=a, destination=b, payload=b"", transport=kind.value)
        return sender.firewall.permits(probe, Direction.OUTBOUND) and receiver.firewall.permits(
            probe, Direction.INBOUND
        )

    # --------------------------------------------------------------- delivery

    def transmit(self, sender: Node, packet: Packet) -> None:
        """Deliver a packet from ``sender`` according to its destination and transport.

        Point-to-point packets go to ``packet.destination``; multicast packets
        are expanded to every multicast-capable node on the sender's segment.
        Raises :class:`NoRouteError` when a unicast destination is unreachable.
        """
        packet.created_at = self.simulator.now
        self.metrics.counter("packets_offered").increment()
        if packet.is_multicast:
            self._transmit_multicast(sender, packet)
        else:
            self._transmit_unicast(sender, packet)

    def _transmit_unicast(self, sender: Node, packet: Packet) -> None:
        destination = packet.destination
        if not self.has_node(destination):
            self.metrics.counter("packets_no_route").increment()
            raise UnknownNodeError(f"unknown destination {destination!r}")
        if not self.reachable(sender.address, destination, packet.transport):
            # Routing failures used to vanish without a counter; discriminate
            # firewall rejections (policy) from missing routes (topology).
            if self._firewall_blocked(sender.address, destination, packet):
                self.metrics.counter("packets_blocked").increment()
            self.metrics.counter("packets_no_route").increment()
            raise NoRouteError(
                f"no {packet.transport} route from {sender.address!r} to {destination!r}"
            )
        spec = self._link_between(sender.address, destination) or self.default_link
        self._schedule_delivery(sender, self.node(destination), packet, spec)

    def _firewall_blocked(self, a: str, b: str, packet: Packet) -> bool:
        """Whether the only obstacle between ``a`` and ``b`` is a firewall."""
        if self.partitioned(a, b) or self._link_between(a, b) is None:
            return False
        try:
            kind = TransportKind(packet.transport)
        except ValueError:
            return False
        sender, receiver = self.node(a), self.node(b)
        if not (sender.supports(kind) and receiver.supports(kind)):
            return False
        probe = Packet(source=a, destination=b, payload=b"", transport=kind.value)
        return not (
            sender.firewall.permits(probe, Direction.OUTBOUND)
            and receiver.firewall.permits(probe, Direction.INBOUND)
        )

    def _transmit_multicast(self, sender: Node, packet: Packet) -> None:
        segment = self.segment_of(sender.address)
        probe_kind = TransportKind.MULTICAST
        if not sender.supports(probe_kind):
            raise NoRouteError(f"node {sender.address!r} has no multicast interface")
        outbound_ok = sender.firewall.permits(packet, Direction.OUTBOUND)
        if not outbound_ok:
            self.metrics.counter("packets_blocked").increment()
            return
        for address in self.segment_members(segment):
            if address == sender.address:
                continue
            receiver = self.node(address)
            if not receiver.supports(probe_kind):
                continue
            if self.partitioned(sender.address, address):
                continue
            copy = packet.retargeted(address)
            if not receiver.firewall.permits(copy, Direction.INBOUND):
                self.metrics.counter("packets_blocked").increment()
                continue
            spec = self._link_between(sender.address, address) or self.default_link
            self._schedule_delivery(sender, receiver, copy, spec)

    def _schedule_delivery(
        self, sender: Node, receiver: Node, packet: Packet, spec: LinkSpec
    ) -> None:
        transport = transport_for(packet.transport)
        if not transport.reliable and self.noise.chance(spec.loss_rate):
            self.metrics.counter("packets_lost").increment()
            return
        # The fault plan is consulted *after* the legacy loss draw so that
        # installing a plan never shifts the noise source's RNG sequence, and
        # applies to every transport -- chaos deliberately breaks the "TCP
        # never loses" idealisation to exercise the retry layers above.
        extra_delays: Tuple[float, ...] = (0.0,)
        plan = self.fault_plan
        if plan is not None:
            decision = plan.decide(sender.address, receiver.address)
            if decision.scripted:
                self.metrics.counter("faults_scripted").increment()
            if decision.drop:
                self.metrics.counter("faults_dropped").increment()
                self.metrics.counter("packets_lost").increment()
                return
            extra_delays = decision.deliveries
            if len(extra_delays) > 1:
                self.metrics.counter("faults_duplicated").increment(len(extra_delays) - 1)
            if any(extra > 0.0 for extra in extra_delays):
                self.metrics.counter("faults_delayed").increment()
        delay = (
            self.noise.jittered(spec.latency, spec.jitter)
            + packet.size / spec.bandwidth
            + transport.per_packet_overhead
        )
        for extra in extra_delays:
            self.metrics.counter("packets_delivered").increment()
            self.metrics.counter("bytes_carried").increment(packet.size)
            self.simulator.schedule(
                delay + extra,
                lambda: receiver.deliver(packet),
                label=f"deliver:{sender.address}->{receiver.address}",
            )

    # ------------------------------------------------------------------ misc

    def settle(self, rounds: int = 64, quantum: float = 1.0) -> int:
        """Let in-flight traffic and periodic tasks quiesce (see ``Simulator.drain``)."""
        return self.simulator.drain(rounds=rounds, quantum=quantum)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Network(nodes={len(self._nodes)}, segments={len(self._segments)})"


__all__ = [
    "Link",
    "LinkSpec",
    "Network",
    "NetworkError",
    "NoRouteError",
    "UnknownNodeError",
]
