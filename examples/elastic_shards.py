#!/usr/bin/env python3
"""Elastic partitioning: grow and shrink a live sharded bus (PR 7).

The placement layer in one sitting:

1. *Consistent-hash placement* -- the sharded bindings now default to
   ``placement="ring"``: a consistent-hash ring with virtual nodes maps
   each placement key (hierarchy root, or ``root:content-key``) to a shard.
   Growing N -> N+1 shards moves only ~1/(N+1) of the keys, and never moves
   a key between two surviving shards.  ``placement="modn"`` keeps the
   legacy CRC-32 mod-N behaviour for comparison.
2. *Live resharding* -- ``bus.add_shard()`` / ``bus.remove_shard()`` work on
   a *running* bus: a drain-then-switch migration pauses only the keys that
   change owner, drains in-flight deliveries, and swaps an immutable epoch
   snapshot -- publishers on unaffected keys never block.
3. *Order preservation* -- a publisher streaming sequenced events across a
   migration loses, duplicates and reorders nothing.

Run it with::

    python examples/elastic_shards.py
"""

from __future__ import annotations

import threading

from repro.core import ShardedLocalBus, TPSEngine
from repro.core.placement import RingPlacement, moved_keys


class Reading:
    """The event type: one sensor reading."""

    def __init__(self, sensor: str = "", value: float = 0.0, seq: int = 0) -> None:
        self.sensor = sensor
        self.value = value
        self.seq = seq


def main() -> None:
    # ------------------------------------------------ placement arithmetic
    # The ring's movement bound, shown directly on the placement layer.
    corpus = [f"sensor-{index}" for index in range(200)]
    old = RingPlacement(tuple(range(4)))
    new = old.with_shards(tuple(range(5)))
    moved = moved_keys(old, new, corpus)
    print(f"ring 4 -> 5 shards: {len(moved)}/{len(corpus)} keys move "
          f"(~1/5 expected; mod-N would move ~4/5)")
    survivors_traded = [
        key for key in corpus
        if key not in moved and new.shard_id_for(key) != old.shard_id_for(key)
    ]
    print(f"keys traded between surviving shards: {len(survivors_traded)}")

    # ------------------------------------------------------ live resharding
    # A content-keyed bus spreads one hot hierarchy across shards; resharding
    # happens while a publisher thread is streaming.
    bus = ShardedLocalBus(shards=2, partition="content", content_key="sensor")
    with TPSEngine(Reading, local_bus=bus) as pub_engine, TPSEngine(
        Reading, local_bus=bus
    ) as sub_engine:
        publisher = pub_engine.new_interface("SHARDED")
        subscriber = sub_engine.new_interface("SHARDED")
        inbox: list[Reading] = []
        lock = threading.Lock()

        def collect(reading: Reading) -> None:
            with lock:
                inbox.append(reading)

        subscriber.subscribe(collect)

        total = 600
        sensors = [f"sensor-{index}" for index in range(12)]

        def stream() -> None:
            for seq in range(total):
                publisher.publish(Reading(sensors[seq % len(sensors)], 20.5, seq))

        thread = threading.Thread(target=stream, name="publisher")
        thread.start()
        bus.add_shard()
        bus.add_shard()
        bus.remove_shard()
        thread.join()
        bus.shutdown()

        print(f"published {total} readings across "
              f"{bus.epoch_number} live migrations (now {len(bus.shards)} shards)")
        delivered = sorted(reading.seq for reading in inbox)
        print(f"delivered exactly once: {delivered == list(range(total))}")
        by_sensor: dict[str, list[int]] = {}
        for reading in inbox:
            by_sensor.setdefault(reading.sensor, []).append(reading.seq)
        in_order = all(seqs == sorted(seqs) for seqs in by_sensor.values())
        print(f"per-sensor order preserved: {in_order}")


if __name__ == "__main__":
    main()
