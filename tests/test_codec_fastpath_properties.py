"""Property tests: the compiled fast paths are byte-identical to the generic ones.

The hot-path overhaul (compiled codec plans, cached XML type descriptions,
escape fast paths, type-indexed routing) is only safe because every fast path
produces exactly what the original implementation produced.  These tests pin
that equivalence down:

* ``ObjectCodec(compiled=True)`` must encode scalars, containers, nested
  values and registered event objects to the *same bytes* as
  ``ObjectCodec(compiled=False)`` (the seed's generic recursive codec), and
  each must decode the other's output;
* ``XmlEventCodec(cache_descriptions=True)`` must produce byte-identical
  documents to the tree-building encoder and round-trip identically;
* ``XmlEventCodec(cache_documents=True)`` (the decode-side mirror) must
  decode every document -- canonical or foreign -- exactly like the
  tree-parsing decoder;
* the escape/unescape fast paths must stay inverses on arbitrary text.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.skirental.types import (
    PremiumSkiRental,
    RentalOffer,
    SkiRental,
    SnowboardRental,
)
from repro.core.local_engine import LocalBus, LocalTPSEngine
from repro.core.xml_types import XmlEventCodec
from repro.serialization.object_codec import ObjectCodec
from repro.serialization.xml_codec import escape_text, unescape_text


class Holder:
    """An event class whose fields take arbitrary nested values."""

    def __init__(self, **fields):
        self.__dict__.update(fields)


class Stateful:
    """Custom __getstate__/__setstate__: must bypass the compiled plans."""

    def __init__(self, value):
        self.value = value
        self.cache = "not serialised"

    def __getstate__(self):
        return {"value": self.value}

    def __setstate__(self, state):
        self.value = state["value"]
        self.cache = "restored"


def _codec_pair():
    compiled = ObjectCodec()
    generic = ObjectCodec(compiled=False)
    for codec in (compiled, generic):
        codec.register(RentalOffer, "t.RentalOffer")
        codec.register(SkiRental, "t.SkiRental")
        codec.register(PremiumSkiRental, "t.PremiumSkiRental")
        codec.register(SnowboardRental, "t.SnowboardRental")
        codec.register(Holder, "t.Holder")
        codec.register(Stateful, "t.Stateful")
    return compiled, generic


_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(10**18), max_value=10**18),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=30),
    st.binary(max_size=30),
)
_values = st.recursive(
    _scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=8), children, max_size=4),
    ),
    max_leaves=20,
)

_events = st.one_of(
    st.builds(
        SkiRental,
        shop=st.text(max_size=12),
        price=st.floats(allow_nan=False, allow_infinity=False),
        brand=st.text(max_size=12),
        number_of_days=st.floats(allow_nan=False, allow_infinity=False),
    ),
    st.builds(
        PremiumSkiRental,
        shop=st.text(max_size=12),
        price=st.floats(allow_nan=False, allow_infinity=False),
        brand=st.text(max_size=12),
        number_of_days=st.floats(allow_nan=False, allow_infinity=False),
        extras=st.lists(st.text(max_size=6), max_size=3).map(tuple),
    ),
    st.builds(
        SnowboardRental,
        shop=st.text(max_size=12),
        price=st.floats(allow_nan=False, allow_infinity=False),
        brand=st.text(max_size=12),
        number_of_days=st.floats(allow_nan=False, allow_infinity=False),
        stance=st.sampled_from(["regular", "goofy"]),
    ),
)


class TestCompiledCodecByteCompatibility:
    @settings(max_examples=120, deadline=None)
    @given(value=_values)
    def test_plain_values_encode_identically(self, value):
        compiled, generic = _codec_pair()
        fast_bytes = compiled.encode(value)
        assert fast_bytes == generic.encode(value)
        assert compiled.decode(fast_bytes) == generic.decode(fast_bytes) == value

    @settings(max_examples=120, deadline=None)
    @given(event=_events)
    def test_event_objects_encode_identically(self, event):
        compiled, generic = _codec_pair()
        fast_bytes = compiled.encode(event)
        assert fast_bytes == generic.encode(event)
        # Cross-decoding: each codec understands the other's output, and the
        # restored instance matches field for field.
        for source, sink in ((compiled, generic), (generic, compiled)):
            restored = sink.decode(source.encode(event))
            assert type(restored) is type(event)
            assert vars(restored) == vars(event)

    @settings(max_examples=60, deadline=None)
    @given(fields=st.dictionaries(
        st.text(min_size=1, max_size=10), _values, min_size=0, max_size=5
    ))
    def test_arbitrary_field_shapes_encode_identically(self, fields):
        compiled, generic = _codec_pair()
        event = Holder(**{f"f_{i}_{k}": v for i, (k, v) in enumerate(fields.items())})
        fast_bytes = compiled.encode(event)
        assert fast_bytes == generic.encode(event)
        assert vars(compiled.decode(fast_bytes)) == vars(generic.decode(fast_bytes))

    def test_shape_drift_within_one_class(self):
        """Instances of one class with different attribute sets all encode
        identically to the generic path (per-shape plan entries)."""
        compiled, generic = _codec_pair()
        variants = [
            Holder(a=1),
            Holder(a=1, b="x"),
            Holder(b="x", a=1),  # same keys, different insertion order
            Holder(),
            Holder(c=[1, {"k": (2.5, None)}]),
        ]
        for event in variants:
            assert compiled.encode(event) == generic.encode(event)
            assert vars(compiled.decode(compiled.encode(event))) == vars(event)

    def test_custom_getstate_bypasses_plans_and_matches(self):
        compiled, generic = _codec_pair()
        event = Stateful(42)
        assert compiled.encode(event) == generic.encode(event)
        restored = compiled.decode(compiled.encode(event))
        assert restored.value == 42 and restored.cache == "restored"

    def test_decode_plan_relearns_on_shape_change(self):
        """A learned key pattern must not corrupt decoding of a new shape."""
        compiled, generic = _codec_pair()
        first = Holder(alpha=1, beta="two")
        second = Holder(gamma=3.5)
        third = Holder(alpha=9, beta="ten")
        for event in (first, second, third, first):
            payload = generic.encode(event)
            assert vars(compiled.decode(payload)) == vars(event)


class TestXmlCodecCacheEquivalence:
    @settings(max_examples=80, deadline=None)
    @given(event=st.builds(
        SkiRental,
        shop=st.text(max_size=20),
        price=st.floats(allow_nan=False, allow_infinity=False),
        brand=st.text(max_size=20),
        number_of_days=st.floats(allow_nan=False, allow_infinity=False),
    ))
    def test_cached_encoding_is_byte_identical(self, event):
        cached = XmlEventCodec()
        uncached = XmlEventCodec(cache_descriptions=False)
        assert cached.encode(event) == uncached.encode(event)

    @settings(max_examples=60, deadline=None)
    @given(
        shop=st.text(max_size=15),
        price=st.floats(allow_nan=False, allow_infinity=False),
    )
    def test_cached_round_trip_matches_uncached(self, shop, price):
        cached = XmlEventCodec()
        uncached = XmlEventCodec(cache_descriptions=False, cache_documents=False)
        for codec in (cached, uncached):
            codec.register(SkiRental)
        event = SkiRental(shop, price, "Atomic", 5)
        from_cached = cached.decode(cached.encode(event))
        from_uncached = uncached.decode(uncached.encode(event))
        assert type(from_cached) is type(from_uncached) is SkiRental
        # All three must agree exactly -- including boundary whitespace in
        # ``shop``, which the writer now entity-encodes so the parser's strip
        # of pretty-printing whitespace cannot eat it.
        assert vars(from_cached) == vars(from_uncached) == vars(event)

    def test_scalar_kind_variants_get_distinct_cache_rows(self):
        cached = XmlEventCodec()
        uncached = XmlEventCodec(cache_descriptions=False)
        variants = [
            Holder(x=1),
            Holder(x=1.5),
            Holder(x="one"),
            Holder(x=True),
            Holder(x=None),
            Holder(x=1, y="two"),
        ]
        for event in variants:
            assert cached.encode(event) == uncached.encode(event)


class TestXmlDecodeDocumentCache:
    """The decode-side mirror: cached-document decode == tree decode."""

    @settings(max_examples=80, deadline=None)
    @given(event=st.builds(
        SkiRental,
        shop=st.text(max_size=20),
        price=st.floats(allow_nan=False, allow_infinity=False),
        brand=st.text(max_size=20),
        number_of_days=st.floats(allow_nan=False, allow_infinity=False),
    ))
    def test_cached_decode_matches_tree_decode_for_known_types(self, event):
        fast = XmlEventCodec()
        tree = XmlEventCodec(cache_documents=False)
        for codec in (fast, tree):
            codec.register(SkiRental)
        payload = fast.encode(event)
        from_fast = fast.decode(payload)
        from_tree = tree.decode(payload)
        assert type(from_fast) is type(from_tree) is SkiRental
        assert vars(from_fast) == vars(from_tree) == vars(event)

    @settings(max_examples=60, deadline=None)
    @given(fields=st.dictionaries(
        st.text(min_size=1, max_size=8),
        st.one_of(
            st.none(), st.booleans(), st.integers(-10**9, 10**9),
            st.floats(allow_nan=False, allow_infinity=False), st.text(max_size=20),
        ),
        max_size=5,
    ))
    def test_unknown_types_decode_to_identical_dynamic_events(self, fields):
        fast = XmlEventCodec()
        tree = XmlEventCodec(cache_documents=False)
        event = Holder(**{f"f_{i}": v for i, v in enumerate(fields.values())})
        payload = fast.encode(event)
        from_fast = fast.decode(payload)
        from_tree = tree.decode(payload)
        assert dict(from_fast) == dict(from_tree)
        assert from_fast.type_name == from_tree.type_name
        assert from_fast.description.lineage() == from_tree.description.lineage()

    def test_repeated_decodes_share_one_plan(self):
        codec = XmlEventCodec()
        codec.register(SkiRental)
        payload = codec.encode(SkiRental("s", 1.0, "b", 2))
        codec.decode(payload)
        codec.decode(codec.encode(SkiRental("other", 9.0, "c", 4)))
        assert len(codec._decode_plans) == 1  # one shape -> one cached plan

    def test_plan_cache_is_bounded_against_fragment_churn(self):
        """A remote producer churning type descriptions must not grow the
        plan cache without limit."""
        from repro.core.xml_types import _DECODE_PLAN_CAPACITY

        codec = XmlEventCodec()
        producer = XmlEventCodec()
        for index in range(_DECODE_PLAN_CAPACITY + 50):
            churned = type(f"Churn{index}", (), {})
            event = churned()
            event.x = index
            codec.decode(producer.encode(event))
        assert len(codec._decode_plans) <= _DECODE_PLAN_CAPACITY

    def test_register_after_caching_is_picked_up(self):
        """The plan caches the description, not the class: registering a
        type after documents of its shape were decoded must take effect."""
        codec = XmlEventCodec()
        producer = XmlEventCodec()
        payload = producer.encode(SkiRental("s", 1.0, "b", 2))
        first = codec.decode(payload)
        assert type(first).__name__ == "DynamicEvent"
        codec.register(SkiRental)
        second = codec.decode(payload)
        assert type(second) is SkiRental

    def test_foreign_documents_fall_back_to_tree_decode(self):
        """Declarations, pretty-printing and reordered attributes do not
        match the canonical shape; both paths must still agree."""
        from repro.serialization.xml_codec import XmlElement, parse_xml, to_xml

        producer = XmlEventCodec()
        canonical = producer.encode(SkiRental("shop", 2.5, "brand", 3)).decode("utf-8")
        root = parse_xml(canonical)
        foreign_docs = [
            '<?xml version="1.0" encoding="UTF-8"?>' + canonical,
            root.to_string(indent=2),
            canonical.replace('name="shop" kind="str"', 'kind="str" name="shop"'),
        ]
        fast = XmlEventCodec()
        tree = XmlEventCodec(cache_documents=False)
        for codec in (fast, tree):
            codec.register(SkiRental)
        for document in foreign_docs:
            payload = document.encode("utf-8")
            assert vars(fast.decode(payload)) == vars(tree.decode(payload))

    def test_entity_heavy_field_values_decode_identically(self):
        event = Holder(tricky='a&b<c>"d"\'e\'', padded="  ws  ", empty="")
        fast = XmlEventCodec()
        tree = XmlEventCodec(cache_documents=False)
        payload = fast.encode(event)
        assert dict(fast.decode(payload)) == dict(tree.decode(payload)) == vars(event)


class TestEscapeFastPaths:
    @settings(max_examples=200, deadline=None)
    @given(text=st.text(max_size=60))
    def test_escape_unescape_inverse(self, text):
        assert unescape_text(escape_text(text)) == text

    def test_no_specials_returns_same_object(self):
        text = "plain text without specials"
        assert escape_text(text) is text
        assert unescape_text(text) is text

    def test_all_specials(self):
        assert escape_text("&<>\"'") == "&amp;&lt;&gt;&quot;&apos;"
        assert unescape_text("&amp;&lt;&gt;&quot;&apos;") == "&<>\"'"


class TestRoutingTableSemantics:
    """The type-indexed routing table must preserve Figure 7 semantics."""

    def test_subtype_routing_matches_isinstance(self):
        bus = LocalBus()
        publisher = LocalTPSEngine(RentalOffer, bus=bus)
        all_offers = LocalTPSEngine(RentalOffer, bus=bus)
        ski_only = LocalTPSEngine(SkiRental, bus=bus)
        received = {"all": [], "ski": []}
        all_offers.subscribe(lambda e: received["all"].append(e))
        ski_only.subscribe(lambda e: received["ski"].append(e))
        publisher.publish(SkiRental("s", 1.0, "b", 2))
        publisher.publish(SnowboardRental("s", 1.0, "b", 2))
        publisher.publish(PremiumSkiRental("s", 1.0, "b", 2))
        assert len(received["all"]) == 3
        assert len(received["ski"]) == 2  # no snowboard offers (Figure 7)

    def test_routes_invalidated_on_attach_and_detach(self):
        bus = LocalBus()
        publisher = LocalTPSEngine(SkiRental, bus=bus)
        first = LocalTPSEngine(SkiRental, bus=bus)
        first.subscribe(lambda e: None)
        assert publisher.publish(SkiRental("s", 1.0, "b", 2)).wire_receipts == [1]
        # A subscriber attached *after* the route row was built must be seen.
        second = LocalTPSEngine(SkiRental, bus=bus)
        second.subscribe(lambda e: None)
        assert publisher.publish(SkiRental("s", 1.0, "b", 2)).wire_receipts == [2]
        first.close()
        assert publisher.publish(SkiRental("s", 1.0, "b", 2)).wire_receipts == [1]

    def test_late_defined_subclass_routes_correctly(self):
        bus = LocalBus()
        publisher = LocalTPSEngine(SkiRental, bus=bus)
        subscriber = LocalTPSEngine(SkiRental, bus=bus)
        events = []
        subscriber.subscribe(events.append)
        publisher.publish(SkiRental("s", 1.0, "b", 2))

        class NightSkiRental(SkiRental):
            pass

        publisher.publish(NightSkiRental("s", 2.0, "b", 1))
        assert [type(e).__name__ for e in events] == ["SkiRental", "NightSkiRental"]

    def test_engines_for_returns_live_snapshot_without_copy(self):
        bus = LocalBus()
        engine = LocalTPSEngine(SkiRental, bus=bus)
        snapshot = bus.engines_for(RentalOffer)
        assert isinstance(snapshot, tuple) and engine in snapshot
        assert bus.engines_for(RentalOffer) is snapshot  # no per-call copy
