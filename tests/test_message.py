"""Tests for JXTA messages (repro.jxta.message)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.jxta.message import Message, MessageElement


class TestMessageElement:
    def test_qualified_name(self):
        assert MessageElement("n", "x").qualified_name == "n"
        assert MessageElement("n", "x", namespace="jxta").qualified_name == "jxta:n"

    def test_text_and_bytes_views(self):
        text_element = MessageElement("t", "héllo")
        assert text_element.as_bytes == "héllo".encode("utf-8")
        assert text_element.as_text == "héllo"
        bytes_element = MessageElement("b", b"\x01\x02")
        assert bytes_element.as_bytes == b"\x01\x02"

    def test_size(self):
        assert MessageElement("t", "abc").size == 3
        assert MessageElement("b", b"12345").size == 5


class TestMessage:
    def test_add_and_get(self):
        message = Message()
        message.add("name", "value")
        message.add("blob", b"\x00\x01")
        assert message.get_text("name") == "value"
        assert message.get_bytes("blob") == b"\x00\x01"
        assert message.get_text("missing", "default") == "default"
        assert message.has("name")
        assert not message.has("missing")

    def test_mime_type_defaults(self):
        message = Message()
        assert message.add("t", "text").mime_type == "text/plain"
        assert message.add("b", b"bytes").mime_type == "application/octet-stream"

    def test_namespaces_are_distinct(self):
        message = Message()
        message.add("x", "plain")
        message.add("x", "scoped", namespace="ns")
        assert message.get_text("x") == "plain"
        assert message.get_text("x", namespace="ns") == "scoped"

    def test_elements_filtering_and_len(self):
        message = Message()
        message.add("a", "1")
        message.add("a", "2")
        message.add("b", "3")
        assert len(message) == 3
        assert [e.as_text for e in message.elements("a")] == ["1", "2"]
        assert len(message.elements()) == 3

    def test_remove(self):
        message = Message()
        message.add("a", "1")
        assert message.remove("a")
        assert not message.remove("a")
        assert not message.has("a")

    def test_size_sums_elements(self):
        message = Message()
        message.add("a", "12345")
        message.add("b", b"123")
        assert message.size == 8

    def test_dup_is_deep_enough(self):
        message = Message()
        message.add("a", "original")
        copy = message.dup()
        copy.add("b", "extra")
        copy.remove("a")
        assert message.has("a")
        assert not message.has("b")
        assert copy.message_number != message.message_number

    def test_round_trip(self):
        message = Message()
        message.add("text", "héllo", namespace="ns", mime_type="text/plain")
        message.add("data", b"\x00\xff\x10")
        restored = Message.from_bytes(message.to_bytes())
        assert restored.get_text("text", namespace="ns") == "héllo"
        assert restored.get_bytes("data") == b"\x00\xff\x10"
        assert len(restored) == 2
        assert restored.elements()[0].mime_type == "text/plain"

    def test_round_trip_preserves_order(self):
        message = Message()
        for index in range(10):
            message.add(f"e{index}", str(index))
        restored = Message.from_bytes(message.to_bytes())
        assert [e.name for e in restored.elements()] == [f"e{i}" for i in range(10)]

    def test_pad_to_reaches_target_size(self):
        message = Message()
        message.add("small", "x")
        message.pad_to(1910)
        assert message.size >= 1910
        # Padding an already large message is a no-op.
        before = message.size
        message.pad_to(100)
        assert message.size == before

    def test_message_numbers_are_unique(self):
        assert Message().message_number != Message().message_number


# ----------------------------------------------------------------- property

_names = st.from_regex(r"[A-Za-z][A-Za-z0-9._-]{0,12}", fullmatch=True)
_payload = st.one_of(st.text(max_size=40), st.binary(max_size=40))


@settings(max_examples=60, deadline=None)
@given(
    elements=st.lists(st.tuples(_names, _payload, st.sampled_from(["", "ns", "jxta"])), max_size=8)
)
def test_property_message_round_trip(elements):
    """Serialising and deserialising a message preserves all elements in order."""
    message = Message()
    for name, content, namespace in elements:
        message.add(name, content, namespace=namespace)
    restored = Message.from_bytes(message.to_bytes())
    assert len(restored) == len(message)
    for original, copy in zip(message.elements(), restored.elements()):
        assert copy.name == original.name
        assert copy.namespace == original.namespace
        assert copy.as_bytes == original.as_bytes
