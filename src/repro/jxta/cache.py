"""Local advertisement cache (JXTA's "cm" -- cache manager).

Every peer keeps discovered and locally published advertisements in a local
cache, organised by discovery kind (peer / group / generic advertisement).
The Peer Discovery Protocol answers remote queries out of this cache and the
paper's ``AdvertisementsFinder`` flushes it at startup
(``discoveryService.flushAdvertisements(null, Discovery.ADV)`` -- Figure 16,
lines 9-11) to avoid acting on stale advertisements.

Entries carry the insertion time and a lifetime, so the cache can drop
advertisements whose age exceeds their lifetime ("each advertisement
encompasses an age to distinguish stale advertisements from new ones").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.jxta.advertisement import Advertisement
from repro.net.simclock import SimClock


class DiscoveryKind:
    """The three discovery kinds, matching JXTA's ``Discovery.PEER/GROUP/ADV``."""

    PEER = 0
    GROUP = 1
    ADV = 2

    ALL = (PEER, GROUP, ADV)

    @classmethod
    def validate(cls, kind: int) -> int:
        """Check that ``kind`` is one of the three valid discovery kinds."""
        if kind not in cls.ALL:
            raise ValueError(f"invalid discovery kind {kind!r} (expected 0, 1 or 2)")
        return kind


@dataclass
class CacheEntry:
    """One cached advertisement with its bookkeeping."""

    advertisement: Advertisement
    inserted_at: float
    lifetime: float
    #: Whether the advertisement was published locally (vs. learned remotely).
    local: bool = True

    def expired(self, now: float) -> bool:
        """Whether the entry has outlived its lifetime."""
        return (now - self.inserted_at) > self.lifetime


class CacheManager:
    """An in-memory advertisement cache indexed by discovery kind and unique key."""

    def __init__(self, clock: SimClock) -> None:
        self._clock = clock
        self._entries: Dict[int, Dict[str, CacheEntry]] = {
            DiscoveryKind.PEER: {},
            DiscoveryKind.GROUP: {},
            DiscoveryKind.ADV: {},
        }

    # ------------------------------------------------------------- mutation

    def publish(
        self,
        advertisement: Advertisement,
        kind: int,
        *,
        lifetime: Optional[float] = None,
        local: bool = True,
    ) -> CacheEntry:
        """Insert (or refresh) an advertisement in the cache.

        Re-publishing an advertisement with the same unique key refreshes its
        insertion time and lifetime -- this is how remote republications keep
        advertisements alive.
        """
        DiscoveryKind.validate(kind)
        entry = CacheEntry(
            advertisement=advertisement,
            inserted_at=self._clock.now,
            lifetime=lifetime if lifetime is not None else advertisement.lifetime,
            local=local,
        )
        self._entries[kind][advertisement.unique_key()] = entry
        return entry

    def remove(self, advertisement: Advertisement, kind: int) -> bool:
        """Remove one advertisement; returns whether it was present."""
        DiscoveryKind.validate(kind)
        return self._entries[kind].pop(advertisement.unique_key(), None) is not None

    def flush(self, kind: Optional[int] = None, *, remote_only: bool = False) -> int:
        """Drop cached advertisements.

        ``kind`` of None flushes every kind.  With ``remote_only`` only
        advertisements learned from other peers are dropped, which is what a
        restarting application wants (its own published advertisements stay).
        Returns the number of entries removed.
        """
        kinds = DiscoveryKind.ALL if kind is None else (DiscoveryKind.validate(kind),)
        removed = 0
        for k in kinds:
            table = self._entries[k]
            if remote_only:
                doomed = [key for key, entry in table.items() if not entry.local]
            else:
                doomed = list(table)
            for key in doomed:
                del table[key]
                removed += 1
        return removed

    def expire(self) -> int:
        """Drop every entry whose age exceeds its lifetime; return how many were dropped."""
        now = self._clock.now
        removed = 0
        for table in self._entries.values():
            doomed = [key for key, entry in table.items() if entry.expired(now)]
            for key in doomed:
                del table[key]
                removed += 1
        return removed

    # -------------------------------------------------------------- queries

    def search(
        self,
        kind: int,
        attribute: Optional[str] = None,
        value: Optional[str] = None,
        *,
        limit: Optional[int] = None,
    ) -> List[Advertisement]:
        """Return cached advertisements of ``kind`` matching the attribute query.

        Expired entries are skipped (and lazily removed).  ``limit`` bounds
        the number of results, mirroring the discovery threshold.
        """
        DiscoveryKind.validate(kind)
        now = self._clock.now
        table = self._entries[kind]
        results: List[Advertisement] = []
        doomed: List[str] = []
        for key, entry in table.items():
            if entry.expired(now):
                doomed.append(key)
                continue
            if entry.advertisement.matches(attribute, value):
                results.append(entry.advertisement)
                if limit is not None and len(results) >= limit:
                    break
        for key in doomed:
            table.pop(key, None)
        return results

    def contains(self, advertisement: Advertisement, kind: int) -> bool:
        """Whether an (unexpired) entry with the same unique key exists."""
        DiscoveryKind.validate(kind)
        entry = self._entries[kind].get(advertisement.unique_key())
        return entry is not None and not entry.expired(self._clock.now)

    def count(self, kind: Optional[int] = None) -> int:
        """Number of cached entries (of one kind, or overall)."""
        if kind is None:
            return sum(len(table) for table in self._entries.values())
        return len(self._entries[DiscoveryKind.validate(kind)])

    def entries(self, kind: int) -> List[CacheEntry]:
        """All entries of one kind (including expired ones, for inspection)."""
        DiscoveryKind.validate(kind)
        return list(self._entries[kind].values())


__all__ = ["CacheEntry", "CacheManager", "DiscoveryKind"]
