"""The lint engine: file walker, per-rule dispatch, suppressions.

The engine is configured by a *profile*: a declarative table mapping rule
ids to a :class:`RuleScope` -- which dotted packages the rule runs over and
its option overrides.  Packages opt in by appearing in a scope (or by the
scope being empty, meaning "everywhere"); a new subsystem that wants, say,
the RL004 determinism rule simply adds its package to that rule's scope in
:data:`repro.analysis.rules.DEFAULT_PROFILE`.  Rules themselves are resolved
through the registry (:mod:`repro.analysis.registry`), never hard-coded, so
test- or application-registered rules run exactly like the built-in pack.

Per file the engine: reads the source, scans inline pragmas
(:mod:`repro.analysis.suppress`), parses one AST, runs every in-scope rule
over it, and drops suppressed findings (counting them).  A file that does
not parse yields a single ``RL000`` parse-error finding -- a broken file
must fail the gate, not silently skip it.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.analysis.findings import Finding, LintRun, PARSE_ERROR_RULE
from repro.analysis.registry import (
    LintConfigError,
    LintContext,
    LintRule,
    get_rule,
)
from repro.analysis.suppress import scan_suppressions


@dataclass(frozen=True)
class RuleScope:
    """Where one rule applies and with which options.

    ``packages`` is a tuple of dotted package prefixes (``"repro.net"``)
    the rule runs over; empty means every linted file.  ``options`` overrides
    the rule class's ``default_options`` (merged key-wise).
    """

    packages: Tuple[str, ...] = ()
    options: Mapping[str, Any] = field(default_factory=dict)

    def applies_to(self, module: str) -> bool:
        if not self.packages:
            return True
        return any(
            module == package or module.startswith(package + ".")
            for package in self.packages
        )


def module_name(path: str) -> str:
    """Derive a dotted module name from a file path.

    Anchored at the last path component named ``repro`` (the package this
    repo ships), so ``src/repro/net/faults.py`` -> ``repro.net.faults``
    regardless of where the tree is checked out.  Files outside the package
    get their bare stem, which only matches rules with an empty scope.
    """
    normalized = os.path.normpath(path).replace("\\", "/")
    parts = normalized.split("/")
    stem = parts[-1]
    if stem.endswith(".py"):
        stem = stem[:-3]
    parts = parts[:-1] + [stem]
    anchor = None
    for index, part in enumerate(parts):
        if part == "repro":
            anchor = index
    if anchor is None:
        return stem
    dotted = parts[anchor:]
    if dotted[-1] == "__init__":
        dotted = dotted[:-1]
    return ".".join(dotted)


class LintEngine:
    """Runs a rule profile over source files or trees."""

    def __init__(
        self,
        profile: Mapping[str, RuleScope],
        *,
        rules: Optional[Sequence[str]] = None,
    ) -> None:
        """``profile`` maps rule id -> :class:`RuleScope`; ``rules`` (when
        given) restricts the run to a subset of the profile's ids.  Unknown
        ids -- in either -- raise :class:`LintConfigError` up front."""
        selected = tuple(profile) if rules is None else tuple(rules)
        self._checks: List[Tuple[str, LintRule, RuleScope, Dict[str, Any]]] = []
        for rule_id in selected:
            normalized = rule_id.strip().upper()
            if normalized not in {key.upper() for key in profile}:
                raise LintConfigError(
                    f"rule {rule_id!r} is not in the profile; profile rules: "
                    + ", ".join(sorted(profile))
                )
            scope = next(
                profile[key] for key in profile if key.upper() == normalized
            )
            rule_class = get_rule(normalized)
            options = dict(rule_class.default_options)
            options.update(scope.options)
            self._checks.append((normalized, rule_class(), scope, options))
        self._checks.sort(key=lambda check: check[0])

    @property
    def rule_ids(self) -> Tuple[str, ...]:
        """The rule ids this engine runs, sorted."""
        return tuple(check[0] for check in self._checks)

    # ------------------------------------------------------------- sources

    def lint_source(
        self,
        source: str,
        *,
        path: str = "<string>",
        module: Optional[str] = None,
    ) -> LintRun:
        """Lint one in-memory source text.

        ``module`` overrides the path-derived dotted module name -- tests
        use this to place fixture snippets inside a scoped package
        (``module="repro.net.fixture"``) without touching the tree.
        """
        run = LintRun(files=1)
        resolved_module = module if module is not None else module_name(path)
        suppressions = scan_suppressions(source)
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as error:
            line = error.lineno or 1
            finding = Finding(
                rule=PARSE_ERROR_RULE,
                path=path,
                line=line,
                column=(error.offset or 1) - 1,
                message=f"file does not parse: {error.msg}",
                hint="fix the syntax error; unparseable files fail the lint gate",
                snippet=(error.text or "").strip(),
            )
            if suppressions.is_suppressed(finding.rule, finding.line):
                run.suppressed += 1
            else:
                run.findings.append(finding)
            return run
        lines = tuple(source.splitlines())
        for rule_id, rule, scope, options in self._checks:
            if not scope.applies_to(resolved_module):
                continue
            context = LintContext(
                path=path,
                module=resolved_module,
                lines=lines,
                options=options,
                rule_id=rule_id,
            )
            for finding in rule.check(tree, context):
                if suppressions.is_suppressed(finding.rule, finding.line):
                    run.suppressed += 1
                else:
                    run.findings.append(finding)
        run.findings.sort(key=lambda f: (f.path, f.line, f.column, f.rule))
        return run

    def lint_file(self, path: str) -> LintRun:
        """Lint one file on disk."""
        try:
            with open(path, encoding="utf-8") as handle:
                source = handle.read()
        except OSError as error:
            raise LintConfigError(f"cannot read {path!r}: {error}") from error
        return self.lint_source(source, path=_display_path(path))

    def lint_paths(self, paths: Iterable[str]) -> LintRun:
        """Lint files and directory trees (``*.py``, sorted, deduplicated)."""
        run = LintRun()
        for file_path in collect_files(paths):
            file_run = self.lint_file(file_path)
            run.findings.extend(file_run.findings)
            run.suppressed += file_run.suppressed
            run.files += file_run.files
        run.findings.sort(key=lambda f: (f.path, f.line, f.column, f.rule))
        return run


def collect_files(paths: Iterable[str]) -> List[str]:
    """Expand files/directories into a sorted, deduplicated ``*.py`` list.

    A path that exists but is neither a ``.py`` file nor a directory, or
    does not exist at all, is a usage error (:class:`LintConfigError`).
    """
    collected: List[str] = []
    seen = set()
    for path in paths:
        if os.path.isdir(path):
            for root, directories, files in os.walk(path):
                directories.sort()
                directories[:] = [d for d in directories if d != "__pycache__"]
                for name in sorted(files):
                    if name.endswith(".py"):
                        full = os.path.join(root, name)
                        if full not in seen:
                            seen.add(full)
                            collected.append(full)
        elif os.path.isfile(path):
            if not path.endswith(".py"):
                raise LintConfigError(f"not a Python file: {path!r}")
            if path not in seen:
                seen.add(path)
                collected.append(path)
        else:
            raise LintConfigError(f"no such file or directory: {path!r}")
    return sorted(collected)


def _display_path(path: str) -> str:
    """Relative-to-cwd when that is shorter and stays inside it."""
    try:
        relative = os.path.relpath(path)
    except ValueError:  # pragma: no cover - different drive on Windows
        return path
    if not relative.startswith(".."):
        return relative
    return path


__all__ = ["LintEngine", "RuleScope", "collect_files", "module_name"]
