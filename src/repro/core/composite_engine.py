"""The ``"SHARDED+JXTA"`` composite binding: sharded bus + JXTA wire.

The paper's layering claim (Section 4) is that TPS is a thin typed layer
over *any* substrate.  This module takes it one step further: a binding
whose substrate is itself two bindings --

* an in-process :class:`~repro.core.sharded_engine.ShardedLocalBus` leg for
  intra-peer traffic (synchronous, lock-free snapshot delivery, optionally
  content-keyed so one hot hierarchy spreads across shards), and
* a :class:`~repro.core.jxta_engine.JxtaTPSEngine` wire leg that fans every
  publication out over the simulated JXTA substrate to remote peers.

The two legs complement each other exactly: the JXTA wire never delivers to
the publishing peer itself (``resolved_peers`` excludes self), so same-peer
interfaces would be deaf to each other over pure JXTA; the local bus covers
precisely that gap.  To keep delivery exactly-once even when an application
shares one :class:`ShardedLocalBus` across peers, every outgoing wire
message is tagged with the bus's process-unique ``bus_id`` (via the
:meth:`~repro.core.jxta_engine.JxtaTPSEngine._decorate_message` hook) and
the wire leg drops incoming messages carrying its own tag: whatever the
local bus already delivered never arrives twice.

Threading model (the PR 4 snapshot/locking design, reused): the local leg is
fully thread-safe -- delivery reads immutable route-row and handler
snapshots lock-free, and the composite's bridge handle flips under its own
lock so concurrent subscribe/unsubscribe churn opens and closes the wire
bridge exactly once.  The wire leg inherits the JXTA engine's single-thread
affinity guard: it runs on the simulated network's event loop, and the
composite routes every wire-touching call (publish, bridge open/close,
teardown) through the owning thread's call stack, so cross-thread misuse
surfaces as the wire leg's clear :class:`PSException` rather than corrupted
network state.

Binding parameters: ``shards``, ``partition``, ``content_key`` (the same
schema as ``"SHARDED"``).  Registry-built buses are scoped **per peer** --
each simulated peer models one process, so its composite interfaces share a
bus with each other but never with another peer's; remote traffic goes over
the wire, exactly as it would between real processes.
"""

from __future__ import annotations

import threading
from typing import Any, Iterable, List, Optional

from repro.core.bindings import BindingRequest, register_binding
from repro.core.exceptions import PSException
from repro.core.interface import PublishReceipt, Subscription
from repro.core.jxta_engine import JxtaTPSEngine, TPSConfig
from repro.core.local_engine import LocalTPSEngine
from repro.core.sharded_engine import (
    SHARDED_BINDING_PARAMS,
    ShardedLocalBus,
    request_bus,
)
from repro.core.type_registry import Criteria
from repro.jxta.ids import PeerID
from repro.jxta.message import Message
from repro.jxta.peer import Peer
from repro.serialization.object_codec import ObjectCodec

#: Message element carrying the publishing bus's id (same-bus echo filter).
TPS_ORIGIN_ELEMENT = "TPSOrigin"


class _CompositeWireLeg(JxtaTPSEngine):
    """The composite's JXTA leg: tags outgoing messages, drops own echoes."""

    def __init__(self, origin: str, *args: Any, **kwargs: Any) -> None:
        self._origin = origin
        super().__init__(*args, **kwargs)

    def _decorate_message(self, message: Message) -> None:
        message.add(TPS_ORIGIN_ELEMENT, self._origin)

    def _on_wire_message(self, message: Message, source: PeerID) -> None:
        if message.get_text(TPS_ORIGIN_ELEMENT) == self._origin:
            # Published through our own local bus: the sharded leg already
            # delivered it to every same-bus subscriber.
            self.peer.metrics.counter("tps_same_bus_filtered").increment()
            return
        super()._on_wire_message(message, source)


class ShardedJxtaTPSEngine(LocalTPSEngine):
    """The ``"SHARDED+JXTA"`` composite TPS interface.

    Subclasses :class:`LocalTPSEngine` (the sharded leg *is* a local engine
    on a :class:`ShardedLocalBus`) and adds a wire leg plus the bridge that
    feeds remote events into this interface's own subscriber manager.  The
    bridge is lazy: it subscribes to the wire leg when this interface gains
    its first subscription and cancels when the last one goes, so an
    unsubscribed composite -- like every other binding -- receives nothing
    ("after this call, no event is received anymore").
    """

    def __init__(
        self,
        event_type: type,
        peer: Peer,
        *,
        bus: ShardedLocalBus,
        criteria: Optional[Criteria] = None,
        codec: Optional[ObjectCodec] = None,
        config: Optional[TPSConfig] = None,
    ) -> None:
        super().__init__(event_type, bus=bus, criteria=criteria, codec=codec)
        #: Serialises bridge open/close against subscription churn.
        self._bridge_lock = threading.Lock()
        self._bridge_handle: Optional[Any] = None
        try:
            self._wire = _CompositeWireLeg(
                bus.bus_id,
                event_type,
                peer,
                criteria=criteria,
                codec=codec,
                config=config,
            )
        except BaseException:
            # The local leg already attached to the bus; don't leak it.
            self.bus.detach(self)
            raise
        # Crash containment covers *this* interface's subscribers (the wire
        # leg's bridge subscription must never be quarantined -- it is the
        # composite's only remote inlet), so the breaker policy is installed
        # on the composite's own manager, on the wire leg's virtual clock.
        wire_config = self._wire.config
        if wire_config.breaker_threshold > 0:
            self.subscriber_manager.set_breaker_policy(
                wire_config.breaker_threshold,
                wire_config.breaker_cooldown,
                clock=lambda: self._wire.peer.now,
                listener=self._wire._on_breaker_transition,
            )

    # ------------------------------------------------------------ properties

    @property
    def wire(self) -> JxtaTPSEngine:
        """The JXTA wire leg (read-only introspection)."""
        return self._wire

    @property
    def ready(self) -> bool:
        """Whether the wire leg can publish (an advertisement is attached)."""
        return self._wire.ready

    @property
    def attachment_count(self) -> int:
        """Number of advertisements the wire leg is attached to."""
        return self._wire.attachment_count

    # ------------------------------------------------------------ publishing

    def publish(self, event: Any) -> PublishReceipt:
        """Publish locally through the sharded bus *and* remotely over JXTA.

        The partition key is resolved first, so a content-keyed event
        missing its declared attribute fails before anything is sent; the
        wire send runs next (it can refuse with ``NotInitializedError``
        before the network settles), and local shard delivery last.  The
        receipt is the wire receipt with the local delivery prepended: one
        extra "pipe" (the bus) and its delivered-count as the first wire
        receipt entry.
        """
        self._check_open()
        self.registry.check_publishable(event)
        copy = self.registry.decode(self.registry.encode(event))
        root_name = self.registry.advertised_name
        index = self.bus.partition_index(root_name, copy)
        wire_receipt = self._wire.publish(event)
        delivered = self.bus.shards[index].publish(self, copy)
        self._sent.append(event)
        return PublishReceipt(
            cpu_time=wire_receipt.cpu_time,
            completion_time=wire_receipt.completion_time,
            pipes=wire_receipt.pipes + 1,
            wire_receipts=[delivered, *wire_receipt.wire_receipts],
        )

    def publish_many(self, events: Iterable[Any]) -> List[PublishReceipt]:
        """Publish a batch; the wire leg is single-threaded, so loop.

        Validates the whole batch up front (batch atomicity matches the
        other bindings), then publishes serially on the calling thread:
        wire sends must stay on the owning thread, and one interface's
        local batch is one hierarchy whose per-key order a serial loop
        trivially preserves.
        """
        self._check_open()
        batch = list(events)
        for event in batch:
            self.registry.check_publishable(event)
        return [self.publish(event) for event in batch]

    # ----------------------------------------------------------- subscribing

    def _sync_bridge(self) -> None:
        """Open/close the wire bridge to match having subscriptions at all.

        The handle swap is atomic under ``_bridge_lock`` (exactly-once under
        concurrent churn); the wire calls run outside the composite's
        dispatch path, on the caller's thread -- which the wire leg's
        affinity guard requires to be the owning thread.
        """
        with self._bridge_lock:
            if self.subscriber_manager.empty:
                handle, self._bridge_handle = self._bridge_handle, None
                if handle is None:
                    return
                action = "close"
            else:
                if self._bridge_handle is not None:
                    return
                action = "open"
                handle = None
        if action == "close":
            handle.cancel()
        else:
            opened = self._wire.subscribe(self._deliver_remote)
            with self._bridge_lock:
                if self._bridge_handle is None and not self.subscriber_manager.empty:
                    self._bridge_handle = opened
                    opened = None
            if opened is not None:
                # Lost the race (another open won, or everyone unsubscribed
                # meanwhile): retire the redundant wire subscription.
                opened.cancel()

    def _deliver_remote(self, event: Any) -> None:
        """Bridge callback: a remote event reaches this interface's subscribers.

        The wire leg has already duplicate-filtered, type-checked and
        criteria-filtered the event; dispatch through the subscriber
        manager's snapshot applies the pushed-down predicates and routes
        callback errors to the paired handlers, exactly as local delivery
        does.
        """
        self._received.append(event)
        self.subscriber_manager.dispatch(event)

    # Subscription mutations may need to open or close the wire bridge, and
    # the wire leg is single-threaded: checking its thread affinity *before*
    # touching any state makes a cross-thread call fail atomically (clear
    # PSException, nothing half-registered, no bridge handle burned) instead
    # of mutating the local leg and then raising from the wire leg.

    def _add_subscription(self, subscription: Subscription) -> None:
        self._wire._check_thread("subscribe")
        super()._add_subscription(subscription)
        self._sync_bridge()

    def _remove_subscriptions(
        self, callback: Optional[Any] = None, handler: Optional[Any] = None
    ) -> int:
        self._wire._check_thread("unsubscribe")
        removed = super()._remove_subscriptions(callback, handler)
        self._sync_bridge()
        return removed

    def _discard_subscription(self, subscription: Subscription) -> int:
        self._wire._check_thread("subscription cancel")
        removed = super()._discard_subscription(subscription)
        self._sync_bridge()
        return removed

    # ----------------------------------------------------------------- close

    def _do_close(self) -> None:
        """Tear down both legs: local detach first, then the wire engine.

        The wire leg's thread affinity is checked up front so a cross-thread
        close fails before the (irreversible) local detach -- ``close()``'s
        revert-to-open contract then leaves a genuinely still-open interface.
        """
        self._wire._check_thread("close")
        super()._do_close()
        with self._bridge_lock:
            self._bridge_handle = None
        self._wire.close()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ShardedJxtaTPSEngine(type={self.registry.interface_name}, "
            f"peer={self._wire.peer.name!r}, shards={len(self.bus.shards)}, "
            f"attachments={self.attachment_count})"
        )


def _sharded_jxta_binding(request: BindingRequest) -> ShardedJxtaTPSEngine:
    """The ``"SHARDED+JXTA"`` binding factory.

    Needs a peer (for the wire leg).  The local leg's bus comes from the
    engine's ``local_bus`` when given (must be a :class:`ShardedLocalBus`),
    else from the binding parameters -- cached per (peer, parameter set), so
    one peer's same-parameter interfaces share a bus and different peers
    never do (a peer models a process).
    """
    if request.peer is None:
        raise PSException(
            "the SHARDED+JXTA binding needs a peer for its wire leg: "
            "construct the engine with TPSEngine(EventType, peer=some_peer)"
        )
    bus = request_bus(request, scope=request.peer)
    return ShardedJxtaTPSEngine(
        request.event_type,
        request.peer,
        bus=bus,
        criteria=request.criteria,
        codec=request.codec,
        config=request.config,
    )


register_binding(
    "SHARDED+JXTA",
    _sharded_jxta_binding,
    capabilities=("in-process", "sharded", "distributed", "simulated-network", "composite"),
    params=SHARDED_BINDING_PARAMS,
    replace=True,
)


__all__ = [
    "ShardedJxtaTPSEngine",
    "TPS_ORIGIN_ELEMENT",
]
