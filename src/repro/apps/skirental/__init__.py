"""The ski-rental application, in the paper's three flavours."""

from __future__ import annotations

from repro.apps.skirental.jxta_app import SkiRentalJxtaPublisher, SkiRentalJxtaSubscriber
from repro.apps.skirental.tps_app import SkiRentalTPSPublisher, SkiRentalTPSSubscriber
from repro.apps.skirental.types import (
    PremiumSkiRental,
    RentalOffer,
    SkiRental,
    SnowboardRental,
)
from repro.apps.skirental.wire_app import WirePublisher, WireSubscriber, shared_wire_advertisement

__all__ = [
    "PremiumSkiRental",
    "RentalOffer",
    "SkiRental",
    "SkiRentalJxtaPublisher",
    "SkiRentalJxtaSubscriber",
    "SkiRentalTPSPublisher",
    "SkiRentalTPSSubscriber",
    "SnowboardRental",
    "WirePublisher",
    "WireSubscriber",
    "shared_wire_advertisement",
]
