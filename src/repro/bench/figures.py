"""Experiment runners for the paper's Figures 18, 19 and 20.

Each runner drives a :class:`~repro.bench.scenario.Scenario` the way the
paper describes the measurement:

* **Figure 18 -- invocation time**: "We measured the time taken for calling
  the sendMessage() method: The publisher produces here 50 events one after
  [the other]."  One publisher, 1 or 4 subscribers; the per-event invocation
  time is the virtual CPU time each publish call charges to the publisher.
* **Figure 19 -- publisher's throughput**: "We consider here a set of 100
  published events and we measure the time for the publisher to deliver those
  events to the subscriber(s)."  The 100 events are grouped into 10 epochs of
  10 and each epoch's rate (events/second) is reported.
* **Figure 20 -- subscriber's throughput**: "Here the publishers try to flood
  the subscriber (10000 events published per each publisher).  Every second,
  we measure the number of events that are received; during 50 seconds."

Every runner returns a small result dataclass with the raw series plus
aggregate statistics, and the module exposes ``run_figure18/19/20`` helpers
that sweep the variants and participant counts shown in the paper's figures.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.bench.scenario import (
    JXTA_WIRE,
    SR_JXTA,
    SR_TPS,
    VARIANTS,
    Scenario,
    ScenarioConfig,
    build_scenario,
)


def _mean(values: Sequence[float]) -> float:
    return statistics.fmean(values) if values else 0.0


def _stdev(values: Sequence[float]) -> float:
    return statistics.stdev(values) if len(values) > 1 else 0.0


# ----------------------------------------------------------------- Figure 18


@dataclass
class InvocationTimeSeries:
    """One curve of Figure 18: per-event invocation time for one configuration."""

    variant: str
    subscribers: int
    per_event_ms: List[float]

    @property
    def mean_ms(self) -> float:
        """Mean invocation time in milliseconds."""
        return _mean(self.per_event_ms)

    @property
    def stdev_ms(self) -> float:
        """Standard deviation of the invocation time in milliseconds."""
        return _stdev(self.per_event_ms)

    @property
    def relative_stdev(self) -> float:
        """Standard deviation as a fraction of the mean (the paper quotes ~20-30 %)."""
        mean = self.mean_ms
        return self.stdev_ms / mean if mean else 0.0


@dataclass
class Figure18Result:
    """All curves of Figure 18, keyed by (variant, subscriber count)."""

    events: int
    series: Dict[Tuple[str, int], InvocationTimeSeries] = field(default_factory=dict)

    def get(self, variant: str, subscribers: int) -> InvocationTimeSeries:
        """The curve for one variant and subscriber count."""
        return self.series[(variant, subscribers)]

    def mean_ms(self, variant: str, subscribers: int) -> float:
        """Mean invocation time of one curve, in milliseconds."""
        return self.get(variant, subscribers).mean_ms


def run_invocation_time(
    variant: str,
    *,
    subscribers: int = 1,
    events: int = 50,
    seed: int = 2002,
) -> InvocationTimeSeries:
    """Measure per-event invocation time for one variant (one curve of Figure 18)."""
    scenario = build_scenario(
        ScenarioConfig(variant=variant, publishers=1, subscribers=subscribers, seed=seed)
    )
    publisher = scenario.publishers[0]
    per_event_ms: List[float] = []
    for _ in range(events):
        receipt = publisher.publish()
        per_event_ms.append(receipt.cpu_time * 1000.0)
        # The next event is produced "one after" the previous: wait for the
        # publish call to complete before issuing the next one.
        scenario.run_until(max(scenario.now, receipt.completion_time))
    scenario.settle(rounds=8)
    return InvocationTimeSeries(
        variant=variant, subscribers=subscribers, per_event_ms=per_event_ms
    )


def run_figure18(
    *,
    events: int = 50,
    subscriber_counts: Sequence[int] = (1, 4),
    variants: Sequence[str] = VARIANTS,
    seed: int = 2002,
) -> Figure18Result:
    """Run the full Figure 18 sweep (three variants x {1, 4} subscribers)."""
    result = Figure18Result(events=events)
    for subscribers in subscriber_counts:
        for variant in variants:
            result.series[(variant, subscribers)] = run_invocation_time(
                variant, subscribers=subscribers, events=events, seed=seed
            )
    return result


# ----------------------------------------------------------------- Figure 19


@dataclass
class ThroughputSeries:
    """One curve of Figure 19: per-epoch publisher throughput for one configuration."""

    variant: str
    subscribers: int
    events_per_epoch: int
    epoch_rates: List[float]

    @property
    def mean_rate(self) -> float:
        """Mean publisher throughput in events/second."""
        return _mean(self.epoch_rates)


@dataclass
class Figure19Result:
    """All curves of Figure 19, keyed by (variant, subscriber count)."""

    events: int
    epochs: int
    series: Dict[Tuple[str, int], ThroughputSeries] = field(default_factory=dict)

    def get(self, variant: str, subscribers: int) -> ThroughputSeries:
        """The curve for one variant and subscriber count."""
        return self.series[(variant, subscribers)]

    def mean_rate(self, variant: str, subscribers: int) -> float:
        """Mean publisher throughput of one curve, in events/second."""
        return self.get(variant, subscribers).mean_rate


def run_publisher_throughput(
    variant: str,
    *,
    subscribers: int = 1,
    events: int = 100,
    epochs: int = 10,
    seed: int = 2002,
) -> ThroughputSeries:
    """Measure publisher-side throughput for one variant (one curve of Figure 19)."""
    if events % epochs:
        raise ValueError(f"events ({events}) must be a multiple of epochs ({epochs})")
    scenario = build_scenario(
        ScenarioConfig(variant=variant, publishers=1, subscribers=subscribers, seed=seed)
    )
    publisher = scenario.publishers[0]
    per_epoch = events // epochs
    epoch_rates: List[float] = []
    for _ in range(epochs):
        epoch_start = scenario.now
        for _ in range(per_epoch):
            receipt = publisher.publish()
            scenario.run_until(max(scenario.now, receipt.completion_time))
        elapsed = scenario.now - epoch_start
        epoch_rates.append(per_epoch / elapsed if elapsed > 0 else 0.0)
    scenario.settle(rounds=8)
    return ThroughputSeries(
        variant=variant,
        subscribers=subscribers,
        events_per_epoch=per_epoch,
        epoch_rates=epoch_rates,
    )


def run_figure19(
    *,
    events: int = 100,
    epochs: int = 10,
    subscriber_counts: Sequence[int] = (1, 4),
    variants: Sequence[str] = VARIANTS,
    seed: int = 2002,
) -> Figure19Result:
    """Run the full Figure 19 sweep (three variants x {1, 4} subscribers)."""
    result = Figure19Result(events=events, epochs=epochs)
    for subscribers in subscriber_counts:
        for variant in variants:
            result.series[(variant, subscribers)] = run_publisher_throughput(
                variant, subscribers=subscribers, events=events, epochs=epochs, seed=seed
            )
    return result


# ----------------------------------------------------------------- Figure 20


@dataclass
class ReceiveRateSeries:
    """One curve of Figure 20: events received per second at the subscriber."""

    variant: str
    publishers: int
    per_second: List[int]

    @property
    def mean_rate(self) -> float:
        """Mean subscriber-side throughput in events/second."""
        return _mean([float(v) for v in self.per_second])

    @property
    def stdev_rate(self) -> float:
        """Standard deviation of the per-second receive counts."""
        return _stdev([float(v) for v in self.per_second])


@dataclass
class Figure20Result:
    """All curves of Figure 20, keyed by (variant, publisher count)."""

    duration: float
    series: Dict[Tuple[str, int], ReceiveRateSeries] = field(default_factory=dict)

    def get(self, variant: str, publishers: int) -> ReceiveRateSeries:
        """The curve for one variant and publisher count."""
        return self.series[(variant, publishers)]

    def mean_rate(self, variant: str, publishers: int) -> float:
        """Mean subscriber-side throughput of one curve, in events/second."""
        return self.get(variant, publishers).mean_rate


def run_subscriber_throughput(
    variant: str,
    *,
    publishers: int = 1,
    duration: float = 50.0,
    events_per_publisher: int = 10_000,
    seed: int = 2002,
) -> ReceiveRateSeries:
    """Measure subscriber-side throughput for one variant (one curve of Figure 20).

    Each publisher floods the single subscriber: as soon as one publish call
    completes the next one is issued, up to ``events_per_publisher`` events or
    until the measurement window (``duration`` seconds) closes.
    """
    scenario = build_scenario(
        ScenarioConfig(variant=variant, publishers=publishers, subscribers=1, seed=seed)
    )
    subscriber = scenario.subscribers[0]
    start = scenario.now
    deadline = start + duration
    simulator = scenario.simulator

    def pump(handle, remaining: int) -> None:
        if remaining <= 0 or simulator.now >= deadline:
            return
        receipt = handle.publish()
        completion = max(simulator.now, receipt.completion_time)
        if completion < deadline:
            simulator.schedule_at(
                completion, lambda: pump(handle, remaining - 1), label="fig20-pump"
            )

    for handle in scenario.publishers:
        pump(handle, events_per_publisher)
    simulator.run_until(deadline)

    receive_times = [t for t in subscriber.receive_times() if start <= t < deadline]
    per_second = [0] * int(duration)
    for timestamp in receive_times:
        index = int(timestamp - start)
        if 0 <= index < len(per_second):
            per_second[index] += 1
    return ReceiveRateSeries(variant=variant, publishers=publishers, per_second=per_second)


def run_figure20(
    *,
    duration: float = 50.0,
    publisher_counts: Sequence[int] = (1, 4),
    variants: Sequence[str] = VARIANTS,
    events_per_publisher: int = 10_000,
    seed: int = 2002,
) -> Figure20Result:
    """Run the full Figure 20 sweep (three variants x {1, 4} publishers)."""
    result = Figure20Result(duration=duration)
    for publishers in publisher_counts:
        for variant in variants:
            result.series[(variant, publishers)] = run_subscriber_throughput(
                variant,
                publishers=publishers,
                duration=duration,
                events_per_publisher=events_per_publisher,
                seed=seed,
            )
    return result


__all__ = [
    "Figure18Result",
    "Figure19Result",
    "Figure20Result",
    "InvocationTimeSeries",
    "ReceiveRateSeries",
    "ThroughputSeries",
    "run_figure18",
    "run_figure19",
    "run_figure20",
    "run_invocation_time",
    "run_publisher_throughput",
    "run_subscriber_throughput",
]
